package export

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/fleet"
	"repro/internal/simsetup"
	"repro/internal/trace"
)

// testServer serves a warmed-up 3-station fleet (PCIe GPU, SoC, SSD).
func testServer(t *testing.T) (*httptest.Server, *fleet.Manager) {
	t.Helper()
	mgr, err := fleet.FromSpec("gpu0=rtx4000ada,soc0=jetson,ssd0=ssd", 1, fleet.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mgr.Close)
	mgr.StepAll(300 * time.Millisecond)
	srv := httptest.NewServer(New(mgr).Handler())
	t.Cleanup(srv.Close)
	return srv, mgr
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestMetricsPerDevice(t *testing.T) {
	srv, _ := testServer(t)
	code, body := get(t, srv.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	for _, dev := range []string{"gpu0", "soc0", "ssd0"} {
		for _, metric := range []string{
			"powersensor_board_watts", "powersensor_joules_total",
			"powersensor_samples_total", "powersensor_resyncs_total",
			"powersensor_dropped_deliveries_total",
		} {
			if !strings.Contains(body, metric+`{device="`+dev+`"} `) {
				t.Errorf("missing %s for %s", metric, dev)
			}
		}
	}
	// Per-channel gauges: the PCIe GPU rig carries three labelled rails.
	for pair, channel := range []string{"slot3v3", "slot12", "pcie8pin"} {
		if !strings.Contains(body, fmt.Sprintf(
			`powersensor_watts{device="gpu0",pair="%d",channel="%s"} `, pair, channel)) {
			t.Errorf("missing gpu0 channel %s watts", channel)
		}
	}
	if !strings.Contains(body, "powersensor_fleet_devices 3\n") {
		t.Error("missing fleet size gauge")
	}
	// Backend kind and native rate are visible as labels on every station.
	for _, want := range []string{
		`powersensor_source_info{device="gpu0",backend="powersensor3",kind="rtx4000ada"} 1`,
		`powersensor_source_info{device="soc0",backend="powersensor3",kind="jetson"} 1`,
		`powersensor_source_rate_hz{device="gpu0"} 20000`,
	} {
		if !strings.Contains(body, want+"\n") {
			t.Errorf("missing exposition line %q", want)
		}
	}
}

// TestMetricsMixedBackends scrapes a heterogeneous fleet: software meters
// must expose their own backend kind and native rate.
func TestMetricsMixedBackends(t *testing.T) {
	mgr, err := fleet.FromSpec("gpu0=rtx4000ada,gpu0sw=nvml,cpu0=rapl", 1, fleet.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mgr.Close)
	mgr.StepAll(time.Second)
	srv := httptest.NewServer(New(mgr).Handler())
	t.Cleanup(srv.Close)

	_, body := get(t, srv.URL+"/metrics")
	for _, want := range []string{
		`powersensor_source_info{device="gpu0sw",backend="nvml",kind="nvml"} 1`,
		`powersensor_source_info{device="cpu0",backend="rapl",kind="rapl"} 1`,
		`powersensor_source_rate_hz{device="gpu0sw"} 10`,
		`powersensor_source_rate_hz{device="cpu0"} 1000`,
		`powersensor_watts{device="cpu0",pair="0",channel="package"} `,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("missing exposition line %q", want)
		}
	}

	// The JSON fleet API carries the same backend metadata.
	code, body := get(t, srv.URL+"/api/fleet")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	var snap struct {
		Devices []fleet.Status `json:"devices"`
	}
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatal(err)
	}
	byName := make(map[string]fleet.Status)
	for _, d := range snap.Devices {
		byName[d.Name] = d
	}
	if d := byName["gpu0sw"]; d.Backend != "nvml" || d.RateHz != 10 {
		t.Errorf("gpu0sw JSON: backend=%q rate=%v", d.Backend, d.RateHz)
	}
	if d := byName["cpu0"]; d.Backend != "rapl" || d.RateHz != 1000 ||
		len(d.Channels) != 1 || d.Channels[0] != "package" {
		t.Errorf("cpu0 JSON: backend=%q rate=%v channels=%v", d.Backend, d.RateHz, d.Channels)
	}
	if d := byName["gpu0"]; d.Backend != "powersensor3" || d.RateHz != 20000 {
		t.Errorf("gpu0 JSON: backend=%q rate=%v", d.Backend, d.RateHz)
	}
}

// TestMetricsDerivedView scrapes a fleet serving raw stations next to
// piped derived views: the exposition must carry the derived backend and
// rewritten rate, and nonzero sampling overhead for the rate-limited
// meter — the acceptance surface of the pipeline layer.
func TestMetricsDerivedView(t *testing.T) {
	mgr, err := fleet.FromSpec(
		"gpu0=synth,gpu0lo=synth@0|resample:1000|calib:0.98,cpu0=rapl,cpu0lim=rapl@2|ratelimit:100",
		1, fleet.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mgr.Close)
	mgr.StepAll(time.Second)
	srv := httptest.NewServer(New(mgr).Handler())
	t.Cleanup(srv.Close)

	_, body := get(t, srv.URL+"/metrics")
	for _, want := range []string{
		`powersensor_source_info{device="gpu0",backend="synthetic",kind="synth"} 1`,
		`powersensor_source_info{device="gpu0lo",backend="synthetic+resample+calib",kind="synth@0|resample:1000|calib:0.98"} 1`,
		`powersensor_source_info{device="cpu0lim",backend="rapl+ratelimit",kind="rapl@2|ratelimit:100"} 1`,
		`powersensor_source_rate_hz{device="gpu0"} 20000`,
		`powersensor_source_rate_hz{device="gpu0lo"} 1000`,
		`powersensor_source_rate_hz{device="cpu0lim"} 100`,
		`powersensor_source_overhead_seconds{device="gpu0"} 0`,
	} {
		if !strings.Contains(body, want+"\n") {
			t.Errorf("missing exposition line %q", want)
		}
	}
	// The rate-limited meter accounted real sampling overhead.
	m := regexp.MustCompile(`powersensor_source_overhead_seconds\{device="cpu0lim"\} ([0-9.e+-]+)`).
		FindStringSubmatch(body)
	if m == nil {
		t.Fatal("missing cpu0lim overhead series")
	}
	if v, err := strconv.ParseFloat(m[1], 64); err != nil || v <= 0 {
		t.Errorf("cpu0lim overhead = %q, want > 0", m[1])
	}
	// Derived stations downsample like any other: both views carry power.
	for _, dev := range []string{"gpu0lo", "cpu0lim"} {
		if !strings.Contains(body, `powersensor_board_watts{device="`+dev+`"} `) {
			t.Errorf("derived station %s has no board watts series", dev)
		}
	}
}

// TestMetricsExpositionFormat is the golden check of the text exposition:
// the exact HELP/TYPE skeleton, and every sample line well-formed.
func TestMetricsExpositionFormat(t *testing.T) {
	srv, _ := testServer(t)
	_, body := get(t, srv.URL+"/metrics")

	var comments []string
	sample := regexp.MustCompile(`^[a-z_]+(\{[a-z_]+="[^"]*"(,[a-z_]+="[^"]*")*\})? -?[0-9]+(\.[0-9]+)?(e[+-][0-9]+)?$`)
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if strings.HasPrefix(line, "# ") {
			comments = append(comments, line)
			continue
		}
		if !sample.MatchString(line) {
			t.Errorf("malformed sample line: %q", line)
		}
	}

	golden := []string{
		"# HELP powersensor_fleet_devices Stations owned by the fleet manager.",
		"# TYPE powersensor_fleet_devices gauge",
		"# HELP powersensor_fleet_adopted_total Stations ever adopted by the fleet manager.",
		"# TYPE powersensor_fleet_adopted_total counter",
		"# HELP powersensor_fleet_retired_total Stations ever retired from the fleet manager.",
		"# TYPE powersensor_fleet_retired_total counter",
		"# HELP powersensor_source_info Measurement backend serving each station; always 1.",
		"# TYPE powersensor_source_info gauge",
		"# HELP powersensor_source_rate_hz Native sample rate of each station's backend, in hertz.",
		"# TYPE powersensor_source_rate_hz gauge",
		"# HELP powersensor_source_overhead_seconds Cumulative wall time each station's source spent sampling inside ReadInto, in seconds.",
		"# TYPE powersensor_source_overhead_seconds gauge",
		"# HELP powersensor_watts Block-averaged power per measurement channel, in watts.",
		"# TYPE powersensor_watts gauge",
		"# HELP powersensor_board_watts Block-averaged summed board power per station, in watts.",
		"# TYPE powersensor_board_watts gauge",
		"# HELP powersensor_joules_total Cumulative energy per station since adoption, in joules.",
		"# TYPE powersensor_joules_total counter",
		"# HELP powersensor_samples_total Sample sets ingested per station, at the source's native rate.",
		"# TYPE powersensor_samples_total counter",
		"# HELP powersensor_marks_total Time-synced user markers ingested per station.",
		"# TYPE powersensor_marks_total counter",
		"# HELP powersensor_resyncs_total Stream bytes skipped to regain protocol alignment.",
		"# TYPE powersensor_resyncs_total counter",
		"# HELP powersensor_dropped_deliveries_total Subscriber deliveries dropped on full fan-out channels.",
		"# TYPE powersensor_dropped_deliveries_total counter",
		"# HELP powersensor_ring_points Downsampled points currently buffered per station.",
		"# TYPE powersensor_ring_points gauge",
		"# HELP powersensor_device_virtual_seconds Virtual time of each station's clock, in seconds.",
		"# TYPE powersensor_device_virtual_seconds gauge",
		"# HELP powersensor_station_health Watchdog health rank per station: 0 healthy, 1 degraded, 2 flatlined, 3 stale.",
		"# TYPE powersensor_station_health gauge",
		"# HELP powersensor_station_gaps_total Delivery-gap episodes the watchdog opened per station.",
		"# TYPE powersensor_station_gaps_total counter",
		"# HELP powersensor_station_flatlines_total Flatline episodes (runs of bit-identical blocks) detected per station.",
		"# TYPE powersensor_station_flatlines_total counter",
		"# HELP powersensor_station_spikes_quarantined_total Isolated glitch samples quarantined before ingest per station.",
		"# TYPE powersensor_station_spikes_quarantined_total counter",
		"# HELP powersensor_station_restarts_total Source restart attempts the watchdog issued per station.",
		"# TYPE powersensor_station_restarts_total counter",
		"# HELP powersensor_self_ingest_fold_seconds Latency of folding one ingest step's batch into the downsample state, fleet-wide, sampled 1-in-32 steps.",
		"# TYPE powersensor_self_ingest_fold_seconds histogram",
		"# HELP powersensor_self_pacing_late_seconds How far past its absolute schedule each paced driver slice completed; empty on unpaced fleets.",
		"# TYPE powersensor_self_pacing_late_seconds histogram",
		"# HELP powersensor_self_stage_read_seconds ReadInto latency per derived-source pipeline stage kind, inner source included; stage kinds never run are omitted.",
		"# TYPE powersensor_self_stage_read_seconds histogram",
		"# HELP powersensor_self_scrape_seconds Time to assemble one /metrics body, by serve path (full render vs cached fleet section).",
		"# TYPE powersensor_self_scrape_seconds histogram",
		"# HELP powersensor_self_scrape_cache_hits_total Scrapes whose fleet section was served from the block-generation body cache.",
		"# TYPE powersensor_self_scrape_cache_hits_total counter",
		"# HELP powersensor_self_scrape_cache_misses_total Scrapes that re-rendered at least one shard segment on a cold or stale cache.",
		"# TYPE powersensor_self_scrape_cache_misses_total counter",
		"# HELP powersensor_self_shard_renders_total Shard exposition segments re-rendered across all scrapes; one busy shard advances this by one per scrape, not by the shard count.",
		"# TYPE powersensor_self_shard_renders_total counter",
		"# HELP powersensor_self_shard_render_seconds Time to re-render one stale shard's exposition segment.",
		"# TYPE powersensor_self_shard_render_seconds histogram",
		"# HELP powersensor_self_shard_step_seconds Wall time one fleet shard spent stepping its stations within one StepAll quantum.",
		"# TYPE powersensor_self_shard_step_seconds histogram",
		"# HELP powersensor_self_events_total Fleet lifecycle events ever recorded (adopt, start, retire, close).",
		"# TYPE powersensor_self_events_total counter",
		"# HELP powersensor_self_events_dropped_total Lifecycle events overwritten after the event ring filled.",
		"# TYPE powersensor_self_events_dropped_total counter",
		"# HELP powersensor_self_ring_fill_ratio Fleet-wide ring occupancy: downsampled points held over total ring capacity.",
		"# TYPE powersensor_self_ring_fill_ratio gauge",
		"# HELP powersensor_self_history_points Points held across every station's compressed long-horizon history series.",
		"# TYPE powersensor_self_history_points gauge",
		"# HELP powersensor_self_history_bytes Compressed bytes held across every station's history series.",
		"# TYPE powersensor_self_history_bytes gauge",
		"# HELP powersensor_self_history_blocks Sealed compressed blocks held across every station's history series.",
		"# TYPE powersensor_self_history_blocks gauge",
		"# HELP powersensor_self_history_compression_ratio Fleet-wide history compression ratio: raw float64 bytes over compressed bytes; 0 while empty.",
		"# TYPE powersensor_self_history_compression_ratio gauge",
		"# HELP powersensor_self_history_ring_missed_total Ring points lost to wraparound before a history sync pass could drain them.",
		"# TYPE powersensor_self_history_ring_missed_total counter",
		"# HELP powersensor_self_history_append_seconds Time one station's ring-to-history sync pass took, drain and compressed append included.",
		"# TYPE powersensor_self_history_append_seconds histogram",
		"# HELP powersensor_self_history_query_seconds Time one windowed energy query took, its pre-query sync included.",
		"# TYPE powersensor_self_history_query_seconds histogram",
		"# HELP powersensor_build_info Build identity of this daemon; always 1.",
		"# TYPE powersensor_build_info gauge",
		"# HELP powersensor_scrape_duration_seconds Wall time spent rendering this scrape.",
		"# TYPE powersensor_scrape_duration_seconds gauge",
	}
	if len(comments) != len(golden) {
		t.Fatalf("comment skeleton has %d lines, want %d:\n%s",
			len(comments), len(golden), strings.Join(comments, "\n"))
	}
	for i := range golden {
		if comments[i] != golden[i] {
			t.Errorf("comment %d:\n got %q\nwant %q", i, comments[i], golden[i])
		}
	}
}

func TestFleetJSON(t *testing.T) {
	srv, _ := testServer(t)
	code, body := get(t, srv.URL+"/api/fleet")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	var snap struct {
		Devices []fleet.Status `json:"devices"`
	}
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatal(err)
	}
	if len(snap.Devices) != 3 {
		t.Fatalf("%d devices, want 3", len(snap.Devices))
	}
	for i, d := range snap.Devices {
		if d.Watts <= 0 || d.Samples == 0 {
			t.Errorf("device %s: watts=%v samples=%d", d.Name, d.Watts, d.Samples)
		}
		if i > 0 && d.Name <= snap.Devices[i-1].Name {
			t.Errorf("devices not sorted: %s after %s", d.Name, snap.Devices[i-1].Name)
		}
	}
}

func TestDeviceTraceCSV(t *testing.T) {
	srv, _ := testServer(t)
	code, body := get(t, srv.URL+"/api/device/gpu0/trace?points=50")
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	tr, err := trace.ReadCSV(strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Pairs != 3 {
		t.Errorf("pairs = %d, want 3", tr.Pairs)
	}
	if len(tr.Points) != 50 {
		t.Errorf("%d points, want 50", len(tr.Points))
	}
	if tr.Energy() <= 0 {
		t.Errorf("energy = %v, want > 0", tr.Energy())
	}
}

func TestDeviceTraceJSON(t *testing.T) {
	srv, _ := testServer(t)
	code, body := get(t, srv.URL+"/api/device/ssd0/trace?format=json")
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	tr, err := trace.ReadJSON(strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Pairs != 2 || len(tr.Points) == 0 {
		t.Errorf("pairs=%d points=%d", tr.Pairs, len(tr.Points))
	}
}

func TestDeviceTraceErrors(t *testing.T) {
	srv, _ := testServer(t)
	for url, want := range map[string]int{
		"/api/device/nope/trace":              http.StatusNotFound,
		"/api/device/gpu0/trace?format=xml":   http.StatusBadRequest,
		"/api/device/gpu0/trace?points=-1":    http.StatusBadRequest,
		"/api/device/gpu0/trace?points=bogus": http.StatusBadRequest,
	} {
		if code, _ := get(t, srv.URL+url); code != want {
			t.Errorf("%s: status %d, want %d", url, code, want)
		}
	}
}

func TestHealthAndIndex(t *testing.T) {
	srv, _ := testServer(t)
	if code, body := get(t, srv.URL+"/healthz"); code != http.StatusOK ||
		body != "{\"stations\":3,\"degraded\":0}\n" {
		t.Errorf("healthz: %d %q", code, body)
	}
	if code, body := get(t, srv.URL+"/"); code != http.StatusOK ||
		!strings.Contains(body, "3 stations") {
		t.Errorf("index: %d %q", code, body)
	}
}

// TestHealthzAllDown pins the probe's failure side: once every station
// of a non-empty fleet is stale or flatlined, /healthz flips to 503 so an
// orchestrator restarts the daemon — while one surviving station keeps it
// at 200, and an empty fleet is merely idle, not dead.
func TestHealthzAllDown(t *testing.T) {
	// A fleet whose only station's source never delivers: dropout with
	// p=1 blacks out every window, so silence crosses StaleAfter and the
	// station goes stale.
	mgr, err := fleet.FromSpec("dead0=synth|dropout:1:10ms", 1,
		fleet.Config{StaleAfter: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mgr.Close)
	srv := httptest.NewServer(New(mgr).Handler())
	t.Cleanup(srv.Close)

	mgr.StepAll(300 * time.Millisecond)
	code, body := get(t, srv.URL+"/healthz")
	if code != http.StatusServiceUnavailable ||
		body != "{\"stations\":1,\"degraded\":1}\n" {
		t.Errorf("all-down healthz: %d %q, want 503 with 1/1", code, body)
	}

	// A healthy station joining the fleet restores the probe: the daemon
	// still serves real data, however sick the rest of the fleet is.
	src, err := simsetup.NewStation("synth", 99)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.Add("alive0", "synth", src); err != nil {
		t.Fatal(err)
	}
	mgr.StepAll(100 * time.Millisecond)
	if code, _ := get(t, srv.URL+"/healthz"); code != http.StatusOK {
		t.Errorf("healthz with one live station: %d, want 200", code)
	}
}

// TestScrapeWhileRunning scrapes a live fleet — endpoints must be safe
// against the concurrently advancing station goroutines.
func TestScrapeWhileRunning(t *testing.T) {
	srv, mgr := testServer(t)
	mgr.Start()
	defer mgr.Stop()
	for i := 0; i < 5; i++ {
		if code, _ := get(t, srv.URL+"/metrics"); code != http.StatusOK {
			t.Fatalf("scrape %d: status %d", i, code)
		}
		if code, _ := get(t, srv.URL+"/api/device/gpu0/trace?points=10"); code != http.StatusOK {
			t.Fatalf("trace %d: status %d", i, code)
		}
	}
}

// TestScrapeUnderIngestLoad hammers /metrics from several goroutines
// while StepAll drives the whole fleet as fast as the host allows, and
// asserts every response stays well-formed — sample lines parse, the
// comment skeleton is complete, and per-station counters only move
// forward. This is the lock-decoupling regression test: a scrape
// assembled from the atomically published telemetry can interleave with
// ingest at any point and must never observe a torn exposition.
func TestScrapeUnderIngestLoad(t *testing.T) {
	mgr, err := fleet.FromSpec("gpu0=rtx4000ada,cpu0=rapl,s0=synth,s1=synth", 1, fleet.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mgr.Close)
	mgr.StepAll(100 * time.Millisecond)
	srv := httptest.NewServer(New(mgr).Handler())
	t.Cleanup(srv.Close)

	stop := make(chan struct{})
	var steps sync.WaitGroup
	steps.Add(1)
	go func() {
		defer steps.Done()
		for {
			select {
			case <-stop:
				return
			default:
				mgr.StepAll(5 * time.Millisecond)
			}
		}
	}()

	sample := regexp.MustCompile(`^[a-z_]+(\{[a-z_]+="[^"]*"(,[a-z_]+="[^"]*")*\})? -?[0-9]+(\.[0-9]+)?(e[+-][0-9]+)?$`)
	var scrapers sync.WaitGroup
	for g := 0; g < 4; g++ {
		scrapers.Add(1)
		go func() {
			defer scrapers.Done()
			var lastSamples uint64
			for i := 0; i < 25; i++ {
				code, body := get(t, srv.URL+"/metrics")
				if code != http.StatusOK {
					t.Errorf("scrape under load: status %d", code)
					return
				}
				comments := 0
				for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
					if strings.HasPrefix(line, "# ") {
						comments++
						continue
					}
					if !sample.MatchString(line) {
						t.Errorf("malformed sample line under load: %q", line)
						return
					}
				}
				// 41 families × (HELP + TYPE).
				if comments != 82 {
					t.Errorf("scrape under load has %d comment lines, want 82", comments)
					return
				}
				m := regexp.MustCompile(`powersensor_samples_total\{device="s0"\} ([0-9]+)`).
					FindStringSubmatch(body)
				if m == nil {
					t.Error("scrape under load lost s0's samples counter")
					return
				}
				n, err := strconv.ParseUint(m[1], 10, 64)
				if err != nil || n < lastSamples {
					t.Errorf("samples counter went backwards under load: %s after %d", m[1], lastSamples)
					return
				}
				lastSamples = n
			}
		}()
	}
	scrapers.Wait()
	close(stop)
	steps.Wait()
}

// fleetSection cuts a /metrics body down to the cacheable fleet section:
// everything before the self-telemetry tail, which renders fresh on every
// scrape and so is never byte-stable across serves.
func fleetSection(t *testing.T, body string) string {
	t.Helper()
	i := strings.Index(body, "# HELP powersensor_self_ingest_fold_seconds")
	if i < 0 {
		t.Fatal("scrape body has no self-telemetry tail")
	}
	return body[:i]
}

// TestMetricsBodyCache pins the block-generation body cache: a repeat
// scrape with no new downsample block serves the previous fleet section
// verbatim, while new blocks and churn invalidate it — and the
// self-telemetry tail renders fresh even on cache hits.
func TestMetricsBodyCache(t *testing.T) {
	mgr, err := fleet.FromSpec("s0=synth,s1=synth", 1, fleet.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mgr.Close)
	mgr.StepAll(50 * time.Millisecond)
	e := New(mgr)
	srv := httptest.NewServer(e.Handler())
	t.Cleanup(srv.Close)

	_, b1 := get(t, srv.URL+"/metrics")
	_, b2 := get(t, srv.URL+"/metrics")
	if hits := e.cacheHits.Load(); hits != 1 {
		t.Errorf("cache hits after repeat scrape = %d, want 1", hits)
	}
	if misses := e.cacheMisses.Load(); misses != 1 {
		t.Errorf("cache misses after first scrape = %d, want 1", misses)
	}
	if fleetSection(t, b1) != fleetSection(t, b2) {
		t.Error("repeat scrape with no new blocks re-rendered the fleet section")
	}
	// The tail is live behind the cache: the hit body carries the first
	// scrape's full render in the path="render" histogram, and both
	// cache counters as self series.
	for _, want := range []string{
		`powersensor_self_scrape_seconds_count{path="render"} 1` + "\n",
		"powersensor_self_scrape_cache_hits_total 1\n",
		"powersensor_self_scrape_cache_misses_total 1\n",
	} {
		if !strings.Contains(b2, want) {
			t.Errorf("cache-hit body missing fresh self series %q", want)
		}
	}

	// New blocks invalidate: the next scrape re-renders fresher counters.
	mgr.StepAll(5 * time.Millisecond)
	_, b3 := get(t, srv.URL+"/metrics")
	if hits := e.cacheHits.Load(); hits != 1 {
		t.Errorf("scrape after new blocks hit the cache (hits=%d)", hits)
	}
	if fleetSection(t, b3) == fleetSection(t, b1) {
		t.Error("scrape after new blocks served the stale fleet section")
	}

	// Churn invalidates: a retired station's series leave immediately.
	if err := mgr.Remove("s1"); err != nil {
		t.Fatal(err)
	}
	_, b4 := get(t, srv.URL+"/metrics")
	if hits := e.cacheHits.Load(); hits != 1 {
		t.Errorf("scrape after churn hit the cache (hits=%d)", hits)
	}
	if strings.Contains(b4, `device="s1"`) {
		t.Error("cached body leaked a retired station's series")
	}

	// DisableBodyCache forces the render path every time.
	e2 := New(mgr).DisableBodyCache()
	srv2 := httptest.NewServer(e2.Handler())
	t.Cleanup(srv2.Close)
	get(t, srv2.URL+"/metrics")
	get(t, srv2.URL+"/metrics")
	if hits := e2.cacheHits.Load(); hits != 0 {
		t.Errorf("disabled cache served %d hits", hits)
	}
}

// addSynth hot-adds one synthetic station to a manager, building the
// source the way cmd/psd's admin endpoint does.
func addSynth(t testing.TB, mgr *fleet.Manager, name string, seed uint64) {
	t.Helper()
	src, err := simsetup.NewStation("synth", seed)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.Add(name, "synth", src); err != nil {
		src.Close()
		t.Fatalf("Add(%s): %v", name, err)
	}
}

// TestMetricsRetiredAbsent: after a station retires, its series vanish
// from the exposition, the churn counters account for it, and re-adding
// the same name with a different kind re-renders fresh labels instead of
// serving the retired station's cached block.
func TestMetricsRetiredAbsent(t *testing.T) {
	mgr, err := fleet.FromSpec("s0=synth,s1=synth", 1, fleet.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mgr.Close)
	mgr.StepAll(50 * time.Millisecond)
	srv := httptest.NewServer(New(mgr).Handler())
	t.Cleanup(srv.Close)

	_, body := get(t, srv.URL+"/metrics")
	if !strings.Contains(body, `device="s0"`) {
		t.Fatal("s0 missing before retirement")
	}
	if !strings.Contains(body, "powersensor_fleet_adopted_total 2\n") ||
		!strings.Contains(body, "powersensor_fleet_retired_total 0\n") {
		t.Error("churn counters wrong before retirement")
	}

	if err := mgr.Remove("s0"); err != nil {
		t.Fatal(err)
	}
	_, body = get(t, srv.URL+"/metrics")
	if strings.Contains(body, `device="s0"`) {
		t.Error("retired s0 still has series in the exposition")
	}
	if !strings.Contains(body, "powersensor_fleet_devices 1\n") ||
		!strings.Contains(body, "powersensor_fleet_adopted_total 2\n") ||
		!strings.Contains(body, "powersensor_fleet_retired_total 1\n") {
		t.Error("churn counters do not reflect the retirement")
	}

	// Reuse the retired name for a different kind: the label cache must
	// not serve the stale synthetic-backend block.
	mgr2, err := fleet.FromSpec("keep=synth", 1, fleet.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mgr2.Close)
	srv2 := httptest.NewServer(New(mgr2).Handler())
	t.Cleanup(srv2.Close)
	addSynth(t, mgr2, "x0", 3)
	if _, body := get(t, srv2.URL+"/metrics"); !strings.Contains(body,
		`powersensor_source_info{device="x0",backend="synthetic",kind="synth"} 1`) {
		t.Fatal("x0 missing before rename churn")
	}
	if err := mgr2.Remove("x0"); err != nil {
		t.Fatal(err)
	}
	src, err := simsetup.NewStation("rapl", 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mgr2.Add("x0", "rapl", src); err != nil {
		t.Fatal(err)
	}
	_, body = get(t, srv2.URL+"/metrics")
	if !strings.Contains(body, `powersensor_source_info{device="x0",backend="rapl",kind="rapl"} 1`) {
		t.Error("re-added x0 serves stale cached labels")
	}
	if strings.Contains(body, `device="x0",backend="synthetic"`) {
		t.Error("retired x0's synthetic labels survived the name reuse")
	}
}

// TestLabelCacheShapeMismatch pins the narrow churn window where a name
// retires and is re-adopted with a different channel set between a
// scrape's retired-counter load and its snapshot: the cached label block
// (sized for the old station) must be rebuilt, not rendered — a stale
// one-pair entry against a three-pair snapshot would index out of range.
func TestLabelCacheShapeMismatch(t *testing.T) {
	e := New(nil) // labelsForShard never touches the manager
	st := &scrapeState{}
	e.labelsForShard(&e.shards[0], []fleet.Status{{Name: "x0", Backend: "rapl", Kind: "rapl",
		Pairs: 1, Channels: []string{"package"}}}, st, 0)
	if len(st.labels) != 1 || len(st.labels[0].pairs) != 1 {
		t.Fatalf("seed entry: %+v", st.labels)
	}
	// Same retired counter (the churn landed after the load), new shape.
	e.labelsForShard(&e.shards[0], []fleet.Status{{Name: "x0", Backend: "synthetic", Kind: "synth",
		Pairs: 3, Channels: []string{"a", "b", "c"}}}, st, 0)
	l := st.labels[0]
	if len(l.pairs) != 3 {
		t.Fatalf("stale cached entry survived shape change: %d pairs, want 3", len(l.pairs))
	}
	if !strings.Contains(l.info, `backend="synthetic"`) {
		t.Errorf("rebuilt entry kept stale info labels: %s", l.info)
	}
}

// TestScrapeDuringChurn hammers /metrics while stations hot-add and
// retire underneath: every scrape must stay well-formed (each line
// parses, the comment skeleton is complete) and the fleet churn counters
// must be monotonic — the exposition-level contract of the dynamic
// lifecycle.
func TestScrapeDuringChurn(t *testing.T) {
	// Paced at real time: drivers sleep between slices, so churners and
	// scrapers get CPU even on a single-core host. (Unpaced drivers spin
	// flat out and starve the HTTP round-trips this test depends on.)
	mgr, err := fleet.FromSpec("keep0=synth,keep1=synth", 1,
		fleet.Config{Slice: time.Millisecond, Rate: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mgr.Close)
	mgr.StepAll(20 * time.Millisecond)
	mgr.Start()
	defer mgr.Stop()
	srv := httptest.NewServer(New(mgr).Handler())
	t.Cleanup(srv.Close)

	stop := make(chan struct{})
	var churn sync.WaitGroup
	for g := 0; g < 2; g++ {
		churn.Add(1)
		go func(g int) {
			defer churn.Done()
			name := fmt.Sprintf("hot%d", g)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				addSynth(t, mgr, name, uint64(i))
				if err := mgr.Remove(name); err != nil {
					t.Errorf("Remove(%s): %v", name, err)
					return
				}
				// Yield between cycles so scrapers progress on small hosts.
				time.Sleep(200 * time.Microsecond)
			}
		}(g)
	}

	sample := regexp.MustCompile(`^[a-z_]+(\{[a-z_]+="[^"]*"(,[a-z_]+="[^"]*")*\})? -?[0-9]+(\.[0-9]+)?(e[+-][0-9]+)?$`)
	counter := func(body, name string) uint64 {
		m := regexp.MustCompile(name + ` ([0-9]+)`).FindStringSubmatch(body)
		if m == nil {
			t.Errorf("scrape during churn lost %s", name)
			return 0
		}
		n, err := strconv.ParseUint(m[1], 10, 64)
		if err != nil {
			t.Errorf("unparsable %s: %v", name, err)
		}
		return n
	}
	var scrapers sync.WaitGroup
	for g := 0; g < 3; g++ {
		scrapers.Add(1)
		go func() {
			defer scrapers.Done()
			var lastAdopted, lastRetired uint64
			for i := 0; i < 40; i++ {
				code, body := get(t, srv.URL+"/metrics")
				if code != http.StatusOK {
					t.Errorf("scrape during churn: status %d", code)
					return
				}
				comments := 0
				for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
					if strings.HasPrefix(line, "# ") {
						comments++
						continue
					}
					if !sample.MatchString(line) {
						t.Errorf("malformed sample line during churn: %q", line)
						return
					}
				}
				if comments != 82 {
					t.Errorf("scrape during churn has %d comment lines, want 82", comments)
					return
				}
				adopted := counter(body, "powersensor_fleet_adopted_total")
				retired := counter(body, "powersensor_fleet_retired_total")
				if adopted < lastAdopted || retired < lastRetired {
					t.Errorf("churn counters went backwards: adopted %d->%d retired %d->%d",
						lastAdopted, adopted, lastRetired, retired)
					return
				}
				if retired > adopted {
					t.Errorf("retired %d exceeds adopted %d", retired, adopted)
					return
				}
				lastAdopted, lastRetired = adopted, retired
			}
		}()
	}
	scrapers.Wait()
	close(stop)
	churn.Wait()

	// The permanent stations survived the churn with data flowing.
	_, body := get(t, srv.URL+"/metrics")
	for _, dev := range []string{"keep0", "keep1"} {
		if !strings.Contains(body, `powersensor_board_watts{device="`+dev+`"} `) {
			t.Errorf("%s lost its series through the churn", dev)
		}
	}
}

// TestMetricsSelfTelemetry checks the self tail's content on a warmed
// fleet: the ingest fold histogram carries real observations, histogram
// invariants hold in the rendered text, and the gauges are sane.
func TestMetricsSelfTelemetry(t *testing.T) {
	srv, _ := testServer(t)
	_, body := get(t, srv.URL+"/metrics")

	// 300 ms of stepping folded many blocks; the sampled fold histogram
	// must have counted some of them.
	m := regexp.MustCompile(`powersensor_self_ingest_fold_seconds_count ([0-9]+)`).
		FindStringSubmatch(body)
	if m == nil {
		t.Fatal("missing ingest fold histogram count")
	}
	if n, _ := strconv.ParseUint(m[1], 10, 64); n == 0 {
		t.Error("ingest fold histogram empty after 300ms of stepping")
	}
	// The +Inf bucket equals _count — the histogram contract scrapers
	// (and recording rules) depend on.
	inf := regexp.MustCompile(`powersensor_self_ingest_fold_seconds_bucket\{le="\+Inf"\} ([0-9]+)`).
		FindStringSubmatch(body)
	if inf == nil || inf[1] != m[1] {
		t.Errorf("+Inf bucket %v != count %s", inf, m[1])
	}
	// Unpaced fleet: the pacing histogram renders, and renders empty.
	if !strings.Contains(body, "powersensor_self_pacing_late_seconds_count 0\n") {
		t.Error("pacing histogram missing or non-empty on an unpaced fleet")
	}
	// Lifecycle: three stations adopted, none dropped from the ring.
	if !strings.Contains(body, "powersensor_self_events_total 3\n") ||
		!strings.Contains(body, "powersensor_self_events_dropped_total 0\n") {
		t.Error("event counters do not reflect the three adoptions")
	}
	// Ring occupancy: points are buffered, rings are not full.
	fill := regexp.MustCompile(`powersensor_self_ring_fill_ratio ([0-9.e+-]+)`).
		FindStringSubmatch(body)
	if fill == nil {
		t.Fatal("missing ring fill ratio")
	}
	if v, err := strconv.ParseFloat(fill[1], 64); err != nil || v <= 0 || v > 1 {
		t.Errorf("ring fill ratio = %q, want in (0, 1]", fill[1])
	}
	if !strings.Contains(body, `powersensor_build_info{version="dev",go="`) {
		t.Error("missing build info gauge")
	}
}

// TestEventsEndpoint covers /api/events: a fresh fleet's adoption events
// oldest-first, the ?n tail cap, and parameter validation.
func TestEventsEndpoint(t *testing.T) {
	srv, _ := testServer(t)
	code, body := get(t, srv.URL+"/api/events")
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var log struct {
		Total   uint64 `json:"total"`
		Dropped uint64 `json:"dropped"`
		Events  []struct {
			Seq     uint64 `json:"seq"`
			Type    string `json:"type"`
			Station string `json:"station"`
			Kind    string `json:"kind"`
			Reason  string `json:"reason"`
		} `json:"events"`
	}
	if err := json.Unmarshal([]byte(body), &log); err != nil {
		t.Fatal(err)
	}
	if log.Total != 3 || log.Dropped != 0 || len(log.Events) != 3 {
		t.Fatalf("total=%d dropped=%d events=%d, want 3/0/3",
			log.Total, log.Dropped, len(log.Events))
	}
	// FromSpec adopts in spec order; no Start ran, so adopts only.
	for i, want := range []string{"gpu0", "soc0", "ssd0"} {
		ev := log.Events[i]
		if ev.Type != "adopt" || ev.Station != want || ev.Seq != uint64(i+1) || ev.Reason != "add" {
			t.Errorf("event %d = %+v, want adopt of %s at seq %d", i, ev, want, i+1)
		}
	}

	// ?n caps the tail at the most recent events.
	_, body = get(t, srv.URL+"/api/events?n=2")
	if err := json.Unmarshal([]byte(body), &log); err != nil {
		t.Fatal(err)
	}
	if len(log.Events) != 2 || log.Events[0].Station != "soc0" || log.Events[1].Station != "ssd0" {
		t.Errorf("n=2 tail = %+v, want the two newest adoptions", log.Events)
	}
	if log.Total != 3 {
		t.Errorf("capped tail reports total %d, want 3", log.Total)
	}

	for _, q := range []string{"?n=0", "?n=-3", "?n=bogus"} {
		if code, _ := get(t, srv.URL+"/api/events"+q); code != http.StatusBadRequest {
			t.Errorf("/api/events%s: status %d, want 400", q, code)
		}
	}
}

// addFaulted hot-adds one fault-staged synthetic station, exercising the
// same kindspec grammar cmd/psd's admin endpoint accepts.
func addFaulted(t testing.TB, mgr *fleet.Manager, name, kindspec string, i int) {
	t.Helper()
	src, err := simsetup.BuildStation(kindspec, 1, i)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.Add(name, kindspec, src); err != nil {
		src.Close()
		t.Fatalf("Add(%s): %v", name, err)
	}
}

// TestScrapeDuringChurnFaulted is the faulted-fleet variant of
// TestScrapeDuringChurn: every station — permanent and churned — carries
// dropout and spike stages, so scrapes race not just adoption and
// retirement but live health transitions, quarantine counters and gap
// episodes. Every scrape must stay well-formed, the health gauge must
// parse to a known severity for the permanent stations, and the
// per-station episode counters must be monotonic.
func TestScrapeDuringChurnFaulted(t *testing.T) {
	const spec = "keep0=synth|dropout:0.3:2ms|spike:0.01:5,keep1=synth|dropout:0.3:2ms|jitter:20us"
	mgr, err := fleet.FromSpec(spec, 1, fleet.Config{Slice: time.Millisecond, Rate: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mgr.Close)
	mgr.StepAll(20 * time.Millisecond)
	mgr.Start()
	defer mgr.Stop()
	srv := httptest.NewServer(New(mgr).Handler())
	t.Cleanup(srv.Close)

	stop := make(chan struct{})
	var churn sync.WaitGroup
	for g := 0; g < 2; g++ {
		churn.Add(1)
		go func(g int) {
			defer churn.Done()
			name := fmt.Sprintf("hot%d", g)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				addFaulted(t, mgr, name, "synth|dropout:0.5:1ms|stuck:0.2:5ms", i)
				if err := mgr.Remove(name); err != nil {
					t.Errorf("Remove(%s): %v", name, err)
					return
				}
				time.Sleep(200 * time.Microsecond)
			}
		}(g)
	}

	sample := regexp.MustCompile(`^[a-z_]+(\{[a-z_]+="[^"]*"(,[a-z_]+="[^"]*")*\})? -?[0-9]+(\.[0-9]+)?(e[+-][0-9]+)?$`)
	gauge := func(body, name, dev string) (float64, bool) {
		m := regexp.MustCompile(name + `\{device="` + dev + `"[^}]*\} (-?[0-9.e+]+)`).
			FindStringSubmatch(body)
		if m == nil {
			return 0, false
		}
		v, err := strconv.ParseFloat(m[1], 64)
		if err != nil {
			t.Errorf("unparsable %s for %s: %v", name, dev, err)
			return 0, false
		}
		return v, true
	}
	var scrapers sync.WaitGroup
	for g := 0; g < 3; g++ {
		scrapers.Add(1)
		go func() {
			defer scrapers.Done()
			lastGaps := map[string]float64{}
			for i := 0; i < 40; i++ {
				code, body := get(t, srv.URL+"/metrics")
				if code != http.StatusOK {
					t.Errorf("faulted scrape: status %d", code)
					return
				}
				comments := 0
				for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
					if strings.HasPrefix(line, "# ") {
						comments++
						continue
					}
					if !sample.MatchString(line) {
						t.Errorf("malformed sample line during faulted churn: %q", line)
						return
					}
				}
				if comments != 82 {
					t.Errorf("faulted scrape has %d comment lines, want 82", comments)
					return
				}
				for _, dev := range []string{"keep0", "keep1"} {
					h, ok := gauge(body, "powersensor_station_health", dev)
					if !ok {
						t.Errorf("scrape %d lost %s's health gauge", i, dev)
						return
					}
					if h != float64(int(h)) || h < 0 || h > 3 {
						t.Errorf("%s health rank = %v, want an integer in 0..3", dev, h)
						return
					}
					g, ok := gauge(body, "powersensor_station_gaps_total", dev)
					if !ok {
						t.Errorf("scrape %d lost %s's gap counter", i, dev)
						return
					}
					if g < lastGaps[dev] {
						t.Errorf("%s gaps went backwards: %v -> %v", dev, lastGaps[dev], g)
						return
					}
					lastGaps[dev] = g
				}
			}
		}()
	}
	scrapers.Wait()
	close(stop)
	churn.Wait()

	// The faulted permanent stations survived, series intact, and the run
	// demonstrably exercised the fault path: dropout p=0.3 over the whole
	// run makes gap episodes a certainty on both stations.
	_, body := get(t, srv.URL+"/metrics")
	for _, dev := range []string{"keep0", "keep1"} {
		if !strings.Contains(body, `powersensor_board_watts{device="`+dev+`"} `) {
			t.Errorf("%s lost its series through the faulted churn", dev)
		}
		if g, ok := gauge(body, "powersensor_station_gaps_total", dev); !ok || g == 0 {
			t.Errorf("%s gap counter = %v (present %v), want nonzero on a dropout-staged station",
				dev, g, ok)
		}
	}
}

// TestHealthTransitionInvalidatesCache pins the watchdog-generation fold
// in fleet.ShardGen: a station going stale freezes its ring-point count —
// the very signal the body cache keys on — so without the watchdog
// generation the cached exposition would serve the old health forever.
// One total-blackout station, no other activity: the only thing that
// changes between the scrapes is its published health.
func TestHealthTransitionInvalidatesCache(t *testing.T) {
	mgr, err := fleet.FromSpec("dead0=synth|dropout:1:10ms", 1,
		fleet.Config{StaleAfter: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mgr.Close)
	srv := httptest.NewServer(New(mgr).Handler())
	t.Cleanup(srv.Close)

	mgr.StepAll(20 * time.Millisecond) // silent, but not yet stale
	_, body := get(t, srv.URL+"/metrics")
	if !strings.Contains(body, `powersensor_station_health{device="dead0"} 0`) {
		t.Fatalf("station not healthy before StaleAfter:\n%s", grepLine(body, "station_health"))
	}

	mgr.StepAll(300 * time.Millisecond) // silence crosses StaleAfter
	_, body = get(t, srv.URL+"/metrics")
	if !strings.Contains(body, `powersensor_station_health{device="dead0"} 3`) {
		t.Errorf("stale transition did not reach the cached exposition:\n%s",
			grepLine(body, "station_health"))
	}
}

// grepLine returns body's lines containing substr, for failure messages.
func grepLine(body, substr string) string {
	var out []string
	for _, line := range strings.Split(body, "\n") {
		if strings.Contains(line, substr) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}

// TestDeviceEnergyEndpoint covers the windowed energy query API: the
// answer must match the device's own EnergyWindow, the mean power must
// be joules over the window width, and an empty window is exactly 0 J —
// the zero-interval contract surfacing over HTTP.
func TestDeviceEnergyEndpoint(t *testing.T) {
	srv, mgr := testServer(t)
	var ans struct {
		Device      string  `json:"device"`
		FromSeconds float64 `json:"from_seconds"`
		ToSeconds   float64 `json:"to_seconds"`
		Joules      float64 `json:"joules"`
		MeanWatts   float64 `json:"mean_watts"`
	}

	code, body := get(t, srv.URL+"/api/device/gpu0/energy?from=0.05&to=0.25")
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	if err := json.Unmarshal([]byte(body), &ans); err != nil {
		t.Fatal(err)
	}
	want := mgr.Device("gpu0").EnergyWindow(50*time.Millisecond, 250*time.Millisecond)
	if ans.Joules <= 0 || ans.Joules != want {
		t.Errorf("energy endpoint says %v J, device says %v J", ans.Joules, want)
	}
	if mean := ans.Joules / 0.2; ans.MeanWatts < mean*0.999 || ans.MeanWatts > mean*1.001 {
		t.Errorf("mean_watts = %v, want %v", ans.MeanWatts, mean)
	}

	// Duration-literal instants parse too, and an empty window is 0 J
	// with 0 W — never NaN.
	code, body = get(t, srv.URL+"/api/device/gpu0/energy?from=100ms&to=100ms")
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	if err := json.Unmarshal([]byte(body), &ans); err != nil {
		t.Fatal(err)
	}
	if ans.Joules != 0 || ans.MeanWatts != 0 {
		t.Errorf("empty window served %v J at %v W, want exactly 0/0", ans.Joules, ans.MeanWatts)
	}

	// Defaults: from 0 to the station's current virtual time — the
	// station's whole measured life, matching its cumulative counter
	// within the tier's 1% ground-truth bound.
	code, body = get(t, srv.URL+"/api/device/gpu0/energy")
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	if err := json.Unmarshal([]byte(body), &ans); err != nil {
		t.Fatal(err)
	}
	st := mgr.Device("gpu0").Status()
	if ans.ToSeconds != st.Now.Seconds() {
		t.Errorf("default to = %v s, want the station's now %v s", ans.ToSeconds, st.Now.Seconds())
	}
	if rel := (ans.Joules - st.Joules) / st.Joules; rel < -0.01 || rel > 0.01 {
		t.Errorf("lifetime window = %v J, station counter %v J (%.2f%% off)",
			ans.Joules, st.Joules, rel*100)
	}

	for url, wantCode := range map[string]int{
		"/api/device/nope/energy":            http.StatusNotFound,
		"/api/device/gpu0/energy?from=bogus": http.StatusBadRequest,
		"/api/device/gpu0/energy?to=-5":      http.StatusBadRequest,
	} {
		if code, _ := get(t, srv.URL+url); code != wantCode {
			t.Errorf("%s: status %d, want %d", url, code, wantCode)
		}
	}
}

// TestDeviceHistoryEndpoint covers the long-range trace export: the body
// round-trips through the trace package's own readers, carries the
// summed-power channel, respects the window, and decimates to ?points.
func TestDeviceHistoryEndpoint(t *testing.T) {
	srv, _ := testServer(t)

	code, body := get(t, srv.URL+"/api/device/gpu0/history?from=0.05&to=0.25")
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	tr, err := trace.ReadCSV(strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Pairs != 1 {
		t.Errorf("history trace pairs = %d, want the one summed channel", tr.Pairs)
	}
	if len(tr.Points) == 0 || tr.Energy() <= 0 {
		t.Fatalf("history trace has %d points, %v J", len(tr.Points), tr.Energy())
	}
	for _, p := range tr.Points {
		if p.Time < 50*time.Millisecond || p.Time > 250*time.Millisecond {
			t.Fatalf("point at %v escaped the [50ms, 250ms] window", p.Time)
		}
	}

	// ?points decimates by stride, never above the cap.
	_, body = get(t, srv.URL+"/api/device/gpu0/history?points=10")
	if tr, err = trace.ReadCSV(strings.NewReader(body)); err != nil {
		t.Fatal(err)
	}
	if len(tr.Points) == 0 || len(tr.Points) > 10 {
		t.Errorf("points=10 served %d points", len(tr.Points))
	}

	// The JSON encoding round-trips through the trace reader too.
	_, body = get(t, srv.URL+"/api/device/soc0/history?format=json")
	if tr, err = trace.ReadJSON(strings.NewReader(body)); err != nil {
		t.Fatal(err)
	}
	if tr.Pairs != 1 || len(tr.Points) == 0 {
		t.Errorf("JSON history trace: pairs=%d points=%d", tr.Pairs, len(tr.Points))
	}

	for url, wantCode := range map[string]int{
		"/api/device/nope/history":            http.StatusNotFound,
		"/api/device/gpu0/history?format=xml": http.StatusBadRequest,
		"/api/device/gpu0/history?points=0":   http.StatusBadRequest,
		"/api/device/gpu0/history?from=bogus": http.StatusBadRequest,
	} {
		if code, _ := get(t, srv.URL+url); code != wantCode {
			t.Errorf("%s: status %d, want %d", url, code, wantCode)
		}
	}
}

// TestMetricsHistorySelfTelemetry checks the history tier's self tail:
// after a sync and a query the footprint gauges are live, the
// compression ratio clears the tier's 4x floor, and both latency
// histograms carry observations.
func TestMetricsHistorySelfTelemetry(t *testing.T) {
	srv, mgr := testServer(t)
	if appended, _ := mgr.SyncHistory(); appended == 0 {
		t.Fatal("warm fleet synced no history points")
	}
	mgr.EnergyWindow(0, 300*time.Millisecond)

	_, body := get(t, srv.URL+"/metrics")
	num := func(name string) float64 {
		m := regexp.MustCompile(name + ` ([0-9.e+-]+)`).FindStringSubmatch(body)
		if m == nil {
			t.Fatalf("missing self series %s", name)
		}
		v, err := strconv.ParseFloat(m[1], 64)
		if err != nil {
			t.Fatalf("unparsable %s: %v", name, err)
		}
		return v
	}
	if pts := num("powersensor_self_history_points"); pts == 0 {
		t.Error("history points gauge empty after a sync")
	}
	if b := num("powersensor_self_history_bytes"); b == 0 {
		t.Error("history bytes gauge empty after a sync")
	}
	if ratio := num("powersensor_self_history_compression_ratio"); ratio < 4 {
		t.Errorf("compression ratio = %v, want >= 4", ratio)
	}
	if n := num("powersensor_self_history_append_seconds_count"); n == 0 {
		t.Error("append histogram never recorded a sync pass")
	}
	if n := num("powersensor_self_history_query_seconds_count"); n == 0 {
		t.Error("query histogram never recorded a window query")
	}
	if missed := num("powersensor_self_history_ring_missed_total"); missed != 0 {
		t.Errorf("ring missed counter = %v on a promptly synced fleet", missed)
	}
}
