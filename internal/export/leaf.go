// Leaf-facing surface of the exporter: the versioned /api/fleet wire
// format a federation head consumes, and the per-leaf exposition segment
// renderer the head uses to merge many leaf fleets into one namespaced
// /metrics body. The renderer reuses the per-shard segment shape of the
// exporter's own scrape path — family-major rows into an offset-indexed
// buffer, cached label blocks, assembly by concatenation — with a leaf
// label folded into every label block so duplicate station names across
// leaves stay distinct series.

package export

import (
	"fmt"
	"strconv"

	"repro/internal/fleet"
	"repro/internal/obs"
)

// FleetSchemaVersion is the wire-format version of the /api/fleet JSON
// body. A federation head refuses a leaf whose schema differs — leaf and
// head builds skewing apart must fail loudly at the poll, not silently
// misrender stations. Bump it whenever a field the head consumes
// changes meaning or shape.
const FleetSchemaVersion = 1

// FleetJSON is the /api/fleet response body — the leaf side of the
// federation wire format. Schema pins the format version, Generation is
// the fleet's block-boundary fingerprint (fleet.Manager.Gen; it also
// backs the endpoint's ETag, so a head can skip both the body transfer
// and its own re-render while a leaf is quiet), and Devices carries the
// per-station statuses with everything a head consumes: health, backend,
// native rate, and the lifecycle state.
type FleetJSON struct {
	Schema     int            `json:"schema"`
	Generation uint64         `json:"generation"`
	Devices    []fleet.Status `json:"devices"`
}

// FleetETag renders the /api/fleet ETag for a generation fingerprint.
// Shared by the serving side and any client building If-None-Match.
func FleetETag(gen uint64) string {
	return `"ps-` + strconv.FormatUint(gen, 16) + `"`
}

// NumDevFamilies is the number of per-device exposition families a
// LeafRenderer renders — the same family set, in the same order, as the
// exporter's own per-shard segments.
const NumDevFamilies = nDevFams

// LeafSegment is a staged copy of one leaf's rendered segment: the
// family-major bytes and the per-family offsets that slice them. Heads
// copy segments out under their own locks (reusing Seg's backing array)
// and assemble bodies lock-free from the copies.
type LeafSegment struct {
	Seg  []byte
	Offs [NumDevFamilies + 1]int
}

// LeafRenderer renders one leaf's station statuses into a family-major
// exposition segment with a leaf label on every series. It caches the
// rendered label blocks per station (names, backends and channel sets
// are immutable for the life of a station), so steady-state re-renders
// append numbers into a reused buffer. Not safe for concurrent use; a
// head guards each leaf's renderer with that leaf's own lock.
type LeafRenderer struct {
	leaf     string
	leafFrag string // `leaf="X",` — the escaped prefix of every label block
	labels   map[string]*devLabels
	resolved []*devLabels
	seg      []byte
	offs     [nDevFams + 1]int
}

// NewLeafRenderer returns a renderer labelling every series with
// leaf="name".
func NewLeafRenderer(name string) *LeafRenderer {
	return &LeafRenderer{
		leaf:     name,
		leafFrag: `leaf="` + escapeLabel(name) + `",`,
		labels:   make(map[string]*devLabels),
	}
}

// Leaf returns the leaf name the renderer labels its series with.
func (r *LeafRenderer) Leaf() string { return r.leaf }

// labelFor resolves the cached label blocks of one station, building
// them on first sight or when the name returned with a different channel
// count (a leaf-side retire-and-readopt under the same name).
func (r *LeafRenderer) labelFor(s *fleet.Status) *devLabels {
	l, ok := r.labels[s.Name]
	if ok && len(l.pairs) != s.Pairs {
		ok = false
	}
	if !ok {
		l = &devLabels{
			dev: fmt.Sprintf(`{%sdevice="%s"}`, r.leafFrag, escapeLabel(s.Name)),
			info: fmt.Sprintf(`{%sdevice="%s",backend="%s",kind="%s"}`,
				r.leafFrag, escapeLabel(s.Name), escapeLabel(s.Backend), escapeLabel(s.Kind)),
		}
		for m := 0; m < s.Pairs; m++ {
			channel := fmt.Sprintf("pair%d", m)
			if m < len(s.Channels) {
				channel = s.Channels[m]
			}
			l.pairs = append(l.pairs, fmt.Sprintf(`{%sdevice="%s",pair="%d",channel="%s"}`,
				r.leafFrag, escapeLabel(s.Name), m, escapeLabel(channel)))
		}
		r.labels[s.Name] = l
	}
	return l
}

// Render renders devs (one leaf's /api/fleet statuses, in the order the
// leaf served them) into the renderer's segment, replacing the previous
// render. Leaf-side churn retires label-cache entries lazily: the cache
// is dropped wholesale once it holds more than twice the live station
// count, so a churny leaf cannot grow it without bound.
func (r *LeafRenderer) Render(devs []fleet.Status) {
	if len(r.labels) > 2*len(devs)+16 {
		clear(r.labels)
	}
	r.resolved = r.resolved[:0]
	for i := range devs {
		r.resolved = append(r.resolved, r.labelFor(&devs[i]))
	}
	seg := r.seg[:0]
	for f := 0; f < nDevFams; f++ {
		r.offs[f] = len(seg)
		for i := range devs {
			seg = appendDevFam(seg, f, &devs[i], r.resolved[i])
		}
	}
	r.offs[nDevFams] = len(seg)
	r.seg = seg
}

// CopySegment stages the current render into dst, reusing dst.Seg's
// backing array. Callers copy under the lock guarding Render and
// assemble from the copy, so a concurrent re-render cannot mutate bytes
// mid-assembly — the same staging discipline as the exporter's shard
// cache.
func (r *LeafRenderer) CopySegment(dst *LeafSegment) {
	dst.Seg = append(dst.Seg[:0], r.seg...)
	dst.Offs = r.offs
}

// AppendLeafSegments appends the merged station families: each
// per-device family's HELP/TYPE header, then that family's rows
// concatenated across the staged leaf segments, keeping the body
// family-major as the text format requires. Within a family, rows group
// by leaf in the order given.
func AppendLeafSegments(buf []byte, segs []LeafSegment) []byte {
	for f := 0; f < nDevFams; f++ {
		buf = append(buf, devFamHdrs[f]...)
		for i := range segs {
			buf = append(buf, segs[i].Seg[segs[i].Offs[f]:segs[i].Offs[f+1]]...)
		}
	}
	return buf
}

// Header renders one family's HELP/TYPE comment block — the exported
// form of the exposition skeleton helper, for consumers (the federation
// head) composing their own families around the fleet ones.
func Header(name, help, typ string) string { return header(name, help, typ) }

// Escape escapes a label value per the exposition text format.
func Escape(s string) string { return escapeLabel(s) }

// AppendSample renders one exposition line — name, pre-rendered label
// block, value, newline — appended into buf, with the integer fast path
// of the exporter's own scrape renderer.
func AppendSample(buf []byte, name, labels string, v float64) []byte {
	return appendSample(buf, name, labels, v)
}

// HistSeries is a pre-rendered exposition histogram series: the family's
// _bucket/_sum/_count names joined once, and a {le="..."} block per
// bucket with any extra labels folded in. Build one per (family, label
// set) at construction time; Append then renders the whole series from
// cached strings and numbers.
type HistSeries struct {
	hs                             *histSeries
	bucketName, sumName, countName string
}

// NewHistSeries pre-renders the series of family with the extra labels
// given as a rendered `k="v"` fragment ("" for none).
func NewHistSeries(family, extra string) *HistSeries {
	return &HistSeries{
		hs:         newHistSeries(extra),
		bucketName: family + "_bucket",
		sumName:    family + "_sum",
		countName:  family + "_count",
	}
}

// Append renders the histogram snapshot in exposition form: cumulative
// _bucket lines, then _sum and _count.
func (h *HistSeries) Append(buf []byte, snap *obs.HistSnapshot) []byte {
	return appendHist(buf, h.bucketName, h.sumName, h.countName, h.hs, snap)
}
