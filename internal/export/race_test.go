//go:build race

package export

// raceEnabled reports that this test binary runs under the race
// detector, where sync.Pool is intentionally degenerate (puts are
// dropped to shake out lifetime bugs) — allocation-bound assertions on
// pooled paths are not meaningful there.
const raceEnabled = true
