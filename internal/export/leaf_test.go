// Tests pinning the federation wire format — the versioned /api/fleet
// JSON body and its ETag discipline — and the leaf segment renderer a
// head merges leaf fleets with.

package export

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/fleet"
)

func wireLeaf(t testing.TB, spec string) (*fleet.Manager, *httptest.Server) {
	t.Helper()
	mgr, err := fleet.FromSpec(spec, 1, fleet.Config{RingCap: 128})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mgr.Close)
	mgr.StepAll(20 * time.Millisecond)
	srv := httptest.NewServer(New(mgr).Handler())
	t.Cleanup(srv.Close)
	return mgr, srv
}

// TestFleetJSONWireFormat pins the v1 /api/fleet wire format a
// federation head consumes. It decodes into a locally-declared mirror of
// the schema rather than the shared structs, so a renamed or retyped
// field breaks this test even if both sides of the shared types move
// together.
func TestFleetJSONWireFormat(t *testing.T) {
	mgr, srv := wireLeaf(t, "w0=synth,w1=synth")
	resp, err := http.Get(srv.URL + "/api/fleet")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}

	// The independent mirror of the wire format: every field the head
	// reads, spelled as the wire spells it.
	var wire struct {
		Schema     int    `json:"schema"`
		Generation uint64 `json:"generation"`
		Devices    []struct {
			Name     string   `json:"name"`
			Kind     string   `json:"kind"`
			Backend  string   `json:"backend"`
			Channels []string `json:"channels"`
			Pairs    int      `json:"pairs"`
			Health   string   `json:"health"`
			Watts    float64  `json:"watts"`
			Joules   float64  `json:"joules"`
			Samples  uint64   `json:"samples"`
		} `json:"devices"`
	}
	if err := json.Unmarshal(body, &wire); err != nil {
		t.Fatalf("decode /api/fleet: %v", err)
	}
	if wire.Schema != FleetSchemaVersion {
		t.Fatalf("schema = %d, want %d", wire.Schema, FleetSchemaVersion)
	}
	if wire.Generation == 0 {
		t.Error("generation = 0, want the fleet's block-boundary fingerprint")
	}
	if len(wire.Devices) != 2 {
		t.Fatalf("devices = %d, want 2", len(wire.Devices))
	}
	for _, d := range wire.Devices {
		if d.Name == "" || d.Kind == "" || d.Backend == "" || d.Health == "" {
			t.Errorf("station %+v missing identity fields the head renders", d)
		}
		if d.Pairs <= 0 || len(d.Channels) != d.Pairs {
			t.Errorf("station %s: pairs=%d channels=%d, want matching positive counts",
				d.Name, d.Pairs, len(d.Channels))
		}
		if d.Samples == 0 {
			t.Errorf("station %s served no samples after warmup", d.Name)
		}
	}

	// The ETag is the generation's: a quiet fleet answers 304 to
	// If-None-Match with no body, and movement changes the tag.
	etag := resp.Header.Get("ETag")
	if want := FleetETag(wire.Generation); etag != want {
		t.Fatalf("ETag = %q, want %q", etag, want)
	}
	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/api/fleet", nil)
	req.Header.Set("If-None-Match", etag)
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	b2, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotModified || len(b2) != 0 {
		t.Fatalf("conditional GET on a quiet fleet: status %d body %dB, want 304 empty",
			resp2.StatusCode, len(b2))
	}

	mgr.StepAll(20 * time.Millisecond)
	resp3, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp3.Body)
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("conditional GET after movement: status %d, want 200", resp3.StatusCode)
	}
	if resp3.Header.Get("ETag") == etag {
		t.Error("ETag unchanged after the fleet moved")
	}
}

// TestLeafRenderer pins the renderer's segment shape: family-major rows
// matching the exporter's own family set, every label block carrying the
// leaf label first, offsets slicing cleanly, and the label cache
// surviving churn without unbounded growth.
func TestLeafRenderer(t *testing.T) {
	mgr, _ := wireLeaf(t, "r0=synth,r1=synth")
	devs := mgr.Snapshot()

	r := NewLeafRenderer(`ra"ck`) // escaping exercised via the quote
	if r.Leaf() != `ra"ck` {
		t.Fatalf("Leaf() = %q", r.Leaf())
	}
	r.Render(devs)
	var seg LeafSegment
	r.CopySegment(&seg)
	if seg.Offs[0] != 0 || seg.Offs[NumDevFamilies] != len(seg.Seg) {
		t.Fatalf("offsets [%d..%d] do not span the %dB segment",
			seg.Offs[0], seg.Offs[NumDevFamilies], len(seg.Seg))
	}
	for f := 0; f < NumDevFamilies; f++ {
		if seg.Offs[f] > seg.Offs[f+1] {
			t.Fatalf("family %d offsets decrease: %d > %d", f, seg.Offs[f], seg.Offs[f+1])
		}
	}
	body := string(AppendLeafSegments(nil, []LeafSegment{seg}))
	if !strings.Contains(body, `powersensor_board_watts{leaf="ra\"ck",device="r0"}`) {
		t.Errorf("rendered body missing the leaf-labelled series:\n%s", body)
	}
	if strings.Count(body, "# HELP powersensor_board_watts ") != 1 {
		t.Error("family header not rendered exactly once")
	}

	// A second render of the same snapshot reuses cached labels and
	// produces identical bytes.
	r.Render(devs)
	var seg2 LeafSegment
	r.CopySegment(&seg2)
	if string(seg2.Seg) != string(seg.Seg) {
		t.Error("re-render of the same snapshot changed the segment bytes")
	}

	// Churn: rendering a shrunken fleet drops the dead station's rows,
	// and heavy name churn cannot grow the label cache without bound.
	r.Render(devs[:1])
	var seg3 LeafSegment
	r.CopySegment(&seg3)
	if strings.Contains(string(seg3.Seg), `device="r1"`) {
		t.Error("retired station survived a re-render")
	}
	churn := make([]fleet.Status, 1)
	for i := 0; i < 200; i++ {
		churn[0] = devs[0]
		churn[0].Name = "churn" + strings.Repeat("x", i%7) // 7 distinct names
		r.Render(churn)
	}
	if n := len(r.labels); n > 2*len(churn)+16+7 {
		t.Errorf("label cache grew to %d entries under churn", n)
	}
}

// TestAppendLeafSegmentsMerges pins the cross-leaf merge: one header per
// family, rows grouped by leaf within each family, exposition stays
// family-major.
func TestAppendLeafSegmentsMerges(t *testing.T) {
	mgr, _ := wireLeaf(t, "m0=synth")
	devs := mgr.Snapshot()
	var segs [2]LeafSegment
	for i, name := range []string{"alpha", "beta"} {
		r := NewLeafRenderer(name)
		r.Render(devs)
		r.CopySegment(&segs[i])
	}
	body := string(AppendLeafSegments(nil, segs[:]))
	a := strings.Index(body, `powersensor_board_watts{leaf="alpha",device="m0"}`)
	b := strings.Index(body, `powersensor_board_watts{leaf="beta",device="m0"}`)
	h := strings.Index(body, "# HELP powersensor_board_watts ")
	if h < 0 || a < h || b < a {
		t.Fatalf("family merge out of order: header=%d alpha=%d beta=%d", h, a, b)
	}
	if strings.Count(body, "# HELP powersensor_board_watts ") != 1 {
		t.Error("merged body repeats the family header per leaf")
	}
}

// BenchmarkLeafRender is the cold half of the head's scrape economics:
// the full re-render of one leaf's segment, paid only when that leaf's
// generation moves. BenchmarkLeafAssemble is the hot half: assembling
// the merged fleet section from staged segments, paid on every scrape.
func BenchmarkLeafRender(b *testing.B) {
	for _, size := range []int{32, 128} {
		b.Run(benchSizeName(size), func(b *testing.B) {
			devs := benchStatuses(b, size)
			r := NewLeafRenderer("leaf0")
			r.Render(devs) // warm the label cache; steady state re-renders
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r.Render(devs)
			}
		})
	}
}

func BenchmarkLeafAssemble(b *testing.B) {
	for _, size := range []int{32, 128} {
		b.Run(benchSizeName(size), func(b *testing.B) {
			devs := benchStatuses(b, size)
			var segs [4]LeafSegment
			for i := range segs {
				r := NewLeafRenderer("leaf" + string(rune('0'+i)))
				r.Render(devs)
				r.CopySegment(&segs[i])
			}
			var buf []byte
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				buf = AppendLeafSegments(buf[:0], segs[:])
			}
		})
	}
}

func benchSizeName(n int) string {
	if n == 32 {
		return "32"
	}
	return "128"
}

func benchStatuses(b *testing.B, size int) []fleet.Status {
	b.Helper()
	var sb strings.Builder
	for i := 0; i < size; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString("bs")
		sb.WriteByte(byte('0' + i/100%10))
		sb.WriteByte(byte('0' + i/10%10))
		sb.WriteByte(byte('0' + i%10))
		sb.WriteString("=synth")
	}
	mgr, err := fleet.FromSpec(sb.String(), 1, fleet.Config{RingCap: 128})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(mgr.Close)
	mgr.StepAll(20 * time.Millisecond)
	return mgr.Snapshot()
}
