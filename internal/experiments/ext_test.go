package experiments

import (
	"strings"
	"testing"
	"time"
)

func TestSSDHiResResolvesBursts(t *testing.T) {
	res, err := RunSSDHiRes(SSDHiResOptions{Window: 3 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	// The future-work claim: sub-millisecond features exist and the 1 s
	// view cannot see them.
	if res.HiResP2P < 2*res.CoarseP2P {
		t.Fatalf("hi-res p-p %.2f W vs coarse %.2f W; 20 kHz should reveal much larger excursions",
			res.HiResP2P, res.CoarseP2P)
	}
	if res.BurstsPerSecond < 1 {
		t.Fatalf("%.1f bursts/s; GC/program activity should be visible", res.BurstsPerSecond)
	}
	if !strings.Contains(res.Table().Render(), "sub-millisecond") {
		t.Error("table render broke")
	}
	if len(res.HiRes.X) == 0 || len(res.Coarse.X) == 0 {
		t.Error("series missing")
	}
}

func TestAblationSamplingRate(t *testing.T) {
	res, err := RunAblationSamplingRate(AblationRateOptions{Kernels: 8, KernelTime: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	// Error must grow monotonically (within tolerance) as rate drops, and
	// the extremes must differ dramatically: this is why 20 kHz matters.
	first, last := res.Rows[0], res.Rows[len(res.Rows)-1]
	if first.RateHz != 20000 || last.RateHz != 10 {
		t.Fatalf("row order wrong: %+v", res.Rows)
	}
	if first.MeanErr > 0.05 {
		t.Errorf("PS3-rate error %.1f%% too high for a 10 ms kernel", first.MeanErr*100)
	}
	if last.MeanErr < 3*first.MeanErr {
		t.Errorf("10 Hz error %.1f%% vs 20 kHz %.1f%%: low rates must be far worse",
			last.MeanErr*100, first.MeanErr*100)
	}
	// 1 kHz (the commercial meters) already degrades vs 20 kHz.
	for _, row := range res.Rows {
		if row.RateHz == 1000 && row.MaxErr <= first.MaxErr {
			t.Errorf("1 kHz max error %.1f%% not worse than 20 kHz %.1f%%",
				row.MaxErr*100, first.MaxErr*100)
		}
	}
	if !strings.Contains(res.Table().Render(), "PowerSensor2") {
		t.Error("table render broke")
	}
}

func TestAblationAveraging(t *testing.T) {
	res := RunAblationAveraging()
	if len(res.Rows) != 6 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	// Find the firmware's operating point.
	var found bool
	for _, r := range res.Rows {
		if r.SamplesPerAvg == 6 {
			found = true
			if r.OutputRateHz != 20000 {
				t.Errorf("6-sample averaging gives %v Hz, want 20 kHz", r.OutputRateHz)
			}
		}
	}
	if !found {
		t.Fatal("design point missing")
	}
	// Noise must fall monotonically with averaging depth; rate likewise.
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].NoiseStdW >= res.Rows[i-1].NoiseStdW {
			t.Error("noise not monotone in averaging depth")
		}
		if res.Rows[i].OutputRateHz >= res.Rows[i-1].OutputRateHz {
			t.Error("rate not monotone in averaging depth")
		}
	}
}
