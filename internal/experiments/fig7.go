package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/kernels"
	"repro/internal/rig"
	"repro/internal/vendorapi"
)

// Fig7Result reproduces Fig. 7: the power trace of a synthetic FMA workload
// measured simultaneously by PowerSensor3 and the vendor's on-board sensor.
type Fig7Result struct {
	Device string

	PS3     Series // 20 kHz external measurement (decimated for plotting)
	Vendor  Series // on-board instantaneous reading
	Vendor2 Series // NVML only: the legacy window-averaged reading

	KernelStart, KernelEnd time.Duration

	// DipsPS3 and DipsVendor count inter-wave power dips each measurement
	// resolves — the paper's headline qualitative difference on NVIDIA.
	DipsPS3    int
	DipsVendor int

	// Energy over the run, per source, plus the model's ground truth.
	PS3Joules    float64
	VendorJoules float64
	TrueJoules   float64

	// IdleReturn is how long after kernel end the device took to fall
	// within 20% of idle power, as seen by PowerSensor3.
	IdleReturn time.Duration
}

// Fig7Options sizes the trace.
type Fig7Options struct {
	KernelDuration time.Duration // paper: ~2 s
	Tail           time.Duration // idle capture after the kernel
}

// DefaultFig7Options returns the paper's configuration.
func DefaultFig7Options() Fig7Options {
	return Fig7Options{KernelDuration: 2 * time.Second, Tail: 1500 * time.Millisecond}
}

// RunFig7a runs the NVIDIA trace (PS3 vs NVML instant vs NVML average).
func RunFig7a(opts Fig7Options) (Fig7Result, error) {
	g := gpu.New(gpu.RTX4000Ada(), 7001)
	r, err := rig.NewPCIe(g, 7001)
	if err != nil {
		return Fig7Result{}, err
	}
	defer r.Close()
	nvml := vendorapi.NewNVML(g)
	return runFig7(r, opts, "NVIDIA RTX 4000 Ada",
		func(t time.Duration) float64 { return nvml.PowerInstant(t) },
		func(t time.Duration) float64 { return nvml.PowerAverage(t) },
		func(t time.Duration) float64 { return nvml.EnergyJoules(t) },
	)
}

// RunFig7b runs the AMD trace (PS3 vs AMD SMI).
func RunFig7b(opts Fig7Options) (Fig7Result, error) {
	g := gpu.New(gpu.W7700(), 7002)
	r, err := rig.NewPCIe(g, 7002)
	if err != nil {
		return Fig7Result{}, err
	}
	defer r.Close()
	smi := vendorapi.NewAMDSMI(g)
	return runFig7(r, opts, "AMD W7700",
		func(t time.Duration) float64 { return smi.Power(t) },
		nil,
		func(t time.Duration) float64 { return smi.EnergyJoules(t) },
	)
}

// runFig7 executes the common trace procedure.
func runFig7(r *rig.Rig, opts Fig7Options, name string,
	vendorRead, vendorAvg func(time.Duration) float64,
	vendorEnergy func(time.Duration) float64) (Fig7Result, error) {

	if opts.KernelDuration <= 0 {
		opts.KernelDuration = 2 * time.Second
	}
	if opts.Tail <= 0 {
		opts.Tail = 1500 * time.Millisecond
	}
	res := Fig7Result{Device: name}
	res.PS3.Name = "PowerSensor3"
	res.Vendor.Name = "vendor instant"
	res.Vendor2.Name = "vendor average"

	// Trace capture: PS3 at full rate via the sample hook; vendor APIs
	// polled at 100 Hz (far above their own refresh, as the real scripts
	// do).
	var ps3T []time.Duration
	var ps3W []float64
	hook := r.PS.AttachSample(func(s core.Sample) {
		var total float64
		for _, w := range s.Watts {
			total += w
		}
		ps3T = append(ps3T, s.DeviceTime)
		ps3W = append(ps3W, total)
	})
	defer r.PS.DetachSample(hook)

	pollVendor := func(upto time.Duration) {
		for t := r.Now(); t < upto; t += 10 * time.Millisecond {
			r.PS.Advance(10 * time.Millisecond)
			now := r.Now()
			res.Vendor.X = append(res.Vendor.X, now.Seconds())
			res.Vendor.Y = append(res.Vendor.Y, vendorRead(now))
			if vendorAvg != nil {
				res.Vendor2.X = append(res.Vendor2.X, now.Seconds())
				res.Vendor2.Y = append(res.Vendor2.Y, vendorAvg(now))
			}
		}
	}

	// Idle lead-in.
	vendorEnergy(r.Now())
	e0True := r.GPU.TrueEnergy()
	st0 := r.PS.Read()
	pollVendor(r.Now() + 500*time.Millisecond)

	// Launch the synthetic workload.
	k := kernels.SyntheticFMA(r.GPU.Spec(), opts.KernelDuration)
	run := r.GPU.LaunchKernel(k, r.Now())
	res.KernelStart, res.KernelEnd = run.Start, run.End
	pollVendor(run.End + opts.Tail)

	st1 := r.PS.Read()
	res.PS3Joules = core.Joules(st0, st1, -1)
	res.VendorJoules = vendorEnergy(r.Now())
	res.TrueJoules = r.GPU.TrueEnergy() - e0True

	// Decimate the PS3 trace for the series (full rate stays in the dip
	// analysis below).
	for i := 0; i < len(ps3T); i += 20 {
		res.PS3.X = append(res.PS3.X, ps3T[i].Seconds())
		res.PS3.Y = append(res.PS3.Y, ps3W[i])
	}

	// Dip counting inside the steady mid-kernel window.
	lo := run.Start + run.Duration()/3
	hi := run.Start + run.Duration()*2/3
	res.DipsPS3 = countDips(ps3T, ps3W, lo, hi, 25)
	res.DipsVendor = countDips(durationsOf(res.Vendor.X), res.Vendor.Y, lo, hi, 25)

	// Idle-return time.
	idleW := r.GPU.Spec().IdleW
	res.IdleReturn = opts.Tail
	for i := range ps3T {
		if ps3T[i] > run.End && ps3W[i] < idleW*1.2 {
			res.IdleReturn = ps3T[i] - run.End
			break
		}
	}
	return res, nil
}

// durationsOf converts second-valued xs to durations.
func durationsOf(xs []float64) []time.Duration {
	out := make([]time.Duration, len(xs))
	for i, x := range xs {
		out[i] = time.Duration(x * float64(time.Second))
	}
	return out
}

// countDips counts falling excursions more than depth watts below the
// running peak within [lo, hi).
func countDips(ts []time.Duration, ws []float64, lo, hi time.Duration, depth float64) int {
	peak := 0.0
	dips := 0
	inDip := false
	for i := range ts {
		if ts[i] < lo || ts[i] >= hi {
			continue
		}
		if ws[i] > peak {
			peak = ws[i]
		}
		below := ws[i] < peak-depth
		if below && !inDip {
			dips++
		}
		inDip = below
	}
	return dips
}

// Table summarises the trace comparison.
func (r Fig7Result) Table() Table {
	t := Table{
		Title:  fmt.Sprintf("Fig. 7: synthetic workload on %s", r.Device),
		Header: []string{"source", "energy (J)", "dips seen", "idle return"},
	}
	t.Rows = append(t.Rows, []string{"PowerSensor3",
		fmt.Sprintf("%.1f", r.PS3Joules), fmt.Sprintf("%d", r.DipsPS3),
		r.IdleReturn.Round(time.Millisecond).String()})
	t.Rows = append(t.Rows, []string{"vendor API",
		fmt.Sprintf("%.1f", r.VendorJoules), fmt.Sprintf("%d", r.DipsVendor), "-"})
	t.Rows = append(t.Rows, []string{"ground truth",
		fmt.Sprintf("%.1f", r.TrueJoules), "-", "-"})
	return t
}

// Plot renders the traces.
func (r Fig7Result) Plot() string {
	series := []Series{r.PS3.Decimate(300), r.Vendor}
	if len(r.Vendor2.X) > 0 {
		series = append(series, r.Vendor2)
	}
	return AsciiPlot(fmt.Sprintf("Fig. 7: %s power trace", r.Device), 76, 18, series...)
}
