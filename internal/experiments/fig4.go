package experiments

import (
	"fmt"
	"time"

	"repro/internal/analog"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/stats"
)

// Fig4Point is one measurement point of the load sweep.
type Fig4Point struct {
	LoadA   float64
	MeanErr float64 // average power error over the sample block, W
	MinErr  float64
	MaxErr  float64
}

// Fig4Sweep is the sweep of one sensor module type.
type Fig4Sweep struct {
	Module string
	Points []Fig4Point
}

// Fig4Result reproduces Fig. 4: power error versus load current for four
// sensor types, with min/max envelopes per point.
type Fig4Result struct {
	Sweeps  []Fig4Sweep
	Samples int
}

// Fig4Options sizes the experiment.
type Fig4Options struct {
	// Samples per measurement point (paper: 128 k).
	Samples int
	// StepA is the sweep step (paper: 1 A).
	StepA float64
}

// DefaultFig4Options returns the paper's configuration.
func DefaultFig4Options() Fig4Options {
	return Fig4Options{Samples: 128 * 1024, StepA: 1}
}

// RunFig4 sweeps each module type from −range to +range, collecting a block
// of samples per step through the full measurement chain, and reports the
// power error against the bench reference meters.
func RunFig4(opts Fig4Options) (Fig4Result, error) {
	if opts.Samples <= 0 {
		opts.Samples = 128 * 1024
	}
	if opts.StepA <= 0 {
		opts.StepA = 1
	}
	cases := []struct {
		kind  analog.ModuleKind
		railV float64
		maxA  float64
		name  string
	}{
		{analog.Slot10A, 3.3, 10, "3.3V 10A"},
		{analog.Slot10A, 12, 10, "12V 10A"},
		{analog.PCIe8Pin20A, 12, 10, "Ext 12V 20A"},
		{analog.USBC, 20, 5, "USB-C 20V 5A"},
	}
	res := Fig4Result{Samples: opts.Samples}
	for ci, c := range cases {
		supply := &bench.Supply{Nominal: c.railV}
		load := &settableLoad{}
		dev := device.New(1000+uint64(ci), device.Slot{
			Module: analog.NewModule(c.kind, c.railV),
			Source: device.BenchSource{Supply: supply, Load: load},
		})
		ps, err := core.Open(dev)
		if err != nil {
			return Fig4Result{}, fmt.Errorf("fig4 %s: %w", c.name, err)
		}

		sweep := Fig4Sweep{Module: c.name}
		volt := bench.FlukeVoltmeter(60)
		amp := bench.FlukeAmmeter(c.maxA * 2)
		for i := -c.maxA; i <= c.maxA+1e-9; i += opts.StepA {
			load.amps = i
			// Reference power from the bench meters.
			refV := volt.Read(supply.Voltage(dev.Now(), i))
			refI := amp.Read(i)
			refP := refV * refI

			// Let the sensor settle after the step, then collect.
			ps.Advance(2 * time.Millisecond)
			errs := collectPowerErrors(ps, opts.Samples, refP)
			s := stats.Summarize(errs)
			sweep.Points = append(sweep.Points, Fig4Point{
				LoadA: i, MeanErr: s.Mean, MinErr: s.Min, MaxErr: s.Max,
			})
		}
		ps.Close()
		res.Sweeps = append(res.Sweeps, sweep)
	}
	return res, nil
}

// settableLoad is a constant-current load the sweep adjusts in place.
type settableLoad struct{ amps float64 }

// Current implements bench.Load.
func (l *settableLoad) Current(time.Duration) float64 { return l.amps }

// collectPowerErrors gathers n per-sample power readings minus refP.
func collectPowerErrors(ps *core.PowerSensor, n int, refP float64) []float64 {
	errs := make([]float64, 0, n)
	hook := ps.AttachSample(func(s core.Sample) {
		if len(errs) < n {
			errs = append(errs, s.Watts[0]-refP)
		}
	})
	defer ps.DetachSample(hook)
	span := time.Duration(n+32) * 50 * time.Microsecond
	ps.Advance(span)
	return errs
}

// Table summarises the sweep endpoints and worst errors per module.
func (r Fig4Result) Table() Table {
	t := Table{
		Title:  fmt.Sprintf("Fig. 4: power error vs load (%d samples/point)", r.Samples),
		Header: []string{"Module", "worst |mean err| (W)", "envelope min (W)", "envelope max (W)"},
	}
	for _, sw := range r.Sweeps {
		var worstMean, envMin, envMax float64
		for _, p := range sw.Points {
			if m := abs(p.MeanErr); m > worstMean {
				worstMean = m
			}
			if p.MinErr < envMin {
				envMin = p.MinErr
			}
			if p.MaxErr > envMax {
				envMax = p.MaxErr
			}
		}
		t.Rows = append(t.Rows, []string{
			sw.Module,
			fmt.Sprintf("%.2f", worstMean),
			fmt.Sprintf("%.2f", envMin),
			fmt.Sprintf("%.2f", envMax),
		})
	}
	return t
}

// Plot renders the mean-error curves.
func (r Fig4Result) Plot() string {
	var series []Series
	for _, sw := range r.Sweeps {
		s := Series{Name: sw.Module}
		for _, p := range sw.Points {
			s.X = append(s.X, p.LoadA)
			s.Y = append(s.Y, p.MeanErr)
		}
		series = append(series, s)
	}
	return AsciiPlot("Fig. 4: mean power error vs load current", 72, 18, series...)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
