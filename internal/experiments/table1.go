package experiments

import (
	"fmt"

	"repro/internal/analog"
)

// Table1Row is one module's theoretical worst-case accuracy.
type Table1Row struct {
	Module  string
	VoltErr float64 // ± volts
	CurrErr float64 // ± amperes
	PowErr  float64 // ± watts
}

// Table1Result reproduces Table I.
type Table1Result struct {
	Rows []Table1Row
}

// RunTable1 computes the closed-form worst-case accuracy of the four sensor
// modules the paper tabulates.
func RunTable1() Table1Result {
	modules := []struct {
		kind  analog.ModuleKind
		railV float64
	}{
		{analog.Slot10A, 12},
		{analog.Slot10A, 3.3},
		{analog.USBC, 20},
		{analog.PCIe8Pin20A, 12},
	}
	var res Table1Result
	for _, m := range modules {
		mod := analog.NewModule(m.kind, m.railV)
		wc := mod.WorstCaseAccuracy()
		res.Rows = append(res.Rows, Table1Row{
			Module:  wc.Module,
			VoltErr: wc.VoltErr,
			CurrErr: wc.CurrErr,
			PowErr:  wc.PowerErr,
		})
	}
	return res
}

// Table renders the result in the paper's layout.
func (r Table1Result) Table() Table {
	t := Table{
		Title:  "Table I: theoretical worst-case accuracy of PowerSensor3 modules",
		Header: []string{"Module", "Voltage", "Current", "Power"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			row.Module,
			fmt.Sprintf("±%.1f mV", row.VoltErr*1000),
			fmt.Sprintf("±%.2f A", row.CurrErr),
			fmt.Sprintf("±%.1f W", row.PowErr),
		})
	}
	return t
}
