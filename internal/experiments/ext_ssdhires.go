package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/fio"
	"repro/internal/ssd"
	"repro/internal/stats"
)

// SSDHiResResult is the paper's stated future work (end of Section V-C):
// evaluating SSD power at sub-millisecond granularity. PowerSensor3's
// 20 kHz stream resolves individual garbage-collection bursts that a 1 s
// view averages away entirely.
type SSDHiResResult struct {
	// Full-rate capture of a write window, in milliseconds / watts.
	HiRes Series
	// The same window at the paper's 1 s granularity.
	Coarse Series

	// HiResP2P and CoarseP2P are the peak-to-peak power excursions at each
	// granularity: the headline of the experiment is HiResP2P ≫ CoarseP2P.
	HiResP2P  float64
	CoarseP2P float64

	// BurstsPerSecond counts sub-millisecond power excursions above the
	// median + threshold — individual program/erase bursts.
	BurstsPerSecond float64
}

// SSDHiResOptions sizes the run.
type SSDHiResOptions struct {
	Window time.Duration // capture window (default 4 s)
}

// RunSSDHiRes preconditions a drive into steady state, runs 4 KiB random
// writes, and captures the PowerSensor3 stream at full 20 kHz resolution.
func RunSSDHiRes(opts SSDHiResOptions) (SSDHiResResult, error) {
	if opts.Window <= 0 {
		opts.Window = 4 * time.Second
	}
	disk := ssd.New(ssd.Samsung980Pro(), 13001)
	fio.Precondition(disk, 13001)
	rig, err := newSSDRig(disk, 13001)
	if err != nil {
		return SSDHiResResult{}, err
	}
	defer rig.ps.Close()
	rig.dev.Skip(disk.Now())

	var res SSDHiResResult
	res.HiRes.Name = "PowerSensor3 20 kHz"
	res.Coarse.Name = "1 s average"

	var watts []float64
	start := rig.dev.Now()
	hook := rig.ps.AttachSample(func(s core.Sample) {
		var total float64
		for _, w := range s.Watts {
			total += w
		}
		watts = append(watts, total)
	})
	fio.Run(disk, fio.Job{
		Pattern: fio.RandWrite, BlockKiB: 4, IODepth: 8,
		Runtime: opts.Window, Seed: 13001,
	}, rig.sync)
	rig.ps.DetachSample(hook)
	_ = start

	if len(watts) < 1000 {
		return SSDHiResResult{}, fmt.Errorf("ssdhires: only %d samples captured", len(watts))
	}

	// Hi-res series (decimated for plotting; stats on the full series).
	for i, w := range watts {
		if i%10 == 0 {
			res.HiRes.X = append(res.HiRes.X, float64(i)*0.05) // ms
			res.HiRes.Y = append(res.HiRes.Y, w)
		}
	}
	res.HiResP2P = stats.Summarize(watts).P2P()

	// Coarse view: 1 s block averages (20000 samples per block).
	coarse := stats.BlockAverage(watts, 20000)
	for i, w := range coarse {
		res.Coarse.X = append(res.Coarse.X, float64(i)*1000)
		res.Coarse.Y = append(res.Coarse.Y, w)
	}
	if len(coarse) >= 2 {
		res.CoarseP2P = stats.Summarize(coarse).P2P()
	}

	// Burst detection: excursions above the 90th percentile by a margin.
	p50 := stats.Percentile(watts, 50)
	threshold := p50 + 0.5
	bursts := 0
	above := false
	for _, w := range watts {
		is := w > threshold
		if is && !above {
			bursts++
		}
		above = is
	}
	res.BurstsPerSecond = float64(bursts) / opts.Window.Seconds()
	return res, nil
}

// Table summarises the comparison.
func (r SSDHiResResult) Table() Table {
	return Table{
		Title:  "Extension (paper §V-C future work): sub-millisecond SSD power analysis",
		Header: []string{"granularity", "power p-p (W)", "bursts/s"},
		Rows: [][]string{
			{"20 kHz (50 µs)", fmt.Sprintf("%.2f", r.HiResP2P), fmt.Sprintf("%.0f", r.BurstsPerSecond)},
			{"1 s average", fmt.Sprintf("%.2f", r.CoarseP2P), "invisible"},
		},
	}
}

// Plot renders both granularities.
func (r SSDHiResResult) Plot() string {
	return AsciiPlot("SSD write power at 20 kHz vs 1 s averages", 76, 16,
		r.HiRes.Decimate(300), r.Coarse)
}
