package experiments

import (
	"fmt"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/rig"
)

// AblationRateRow is the kernel-energy measurement error at one effective
// sampling rate.
type AblationRateRow struct {
	RateHz  float64
	MeanErr float64 // fractional energy error vs ground truth, mean |error|
	MaxErr  float64
}

// AblationRateResult quantifies the design choice the whole paper rests on:
// how much sampling rate matters when measuring *short* GPU kernels.
// PowerSensor3's 20 kHz stream is decimated to the rates of the tools the
// paper surveys (PowerSensor2's 2.8 kHz, PowerMon2's 1 kHz, Powenetics'
// 1 kHz, NVML's ~10 Hz) and the per-kernel energy estimate is compared to
// the model's ground truth.
type AblationRateResult struct {
	KernelMillis float64
	Rows         []AblationRateRow
}

// AblationRateOptions sizes the experiment.
type AblationRateOptions struct {
	Kernels    int           // how many kernel launches to average over
	KernelTime time.Duration // per-kernel execution target
}

// RunAblationSamplingRate measures short-kernel energy at several effective
// sampling rates.
func RunAblationSamplingRate(opts AblationRateOptions) (AblationRateResult, error) {
	if opts.Kernels <= 0 {
		opts.Kernels = 20
	}
	if opts.KernelTime <= 0 {
		opts.KernelTime = 10 * time.Millisecond
	}
	g := gpu.New(gpu.RTX4000Ada(), 14001)
	r, err := rig.NewPCIe(g, 14001)
	if err != nil {
		return AblationRateResult{}, err
	}
	defer r.Close()
	g.SetAppClock(1815)

	// Rates: PS3 native, PS2, the 1 kHz commercial meters, 100 Hz, NVML.
	rates := []float64{20000, 2800, 1000, 100, 10}
	errSums := make([]float64, len(rates))
	errMax := make([]float64, len(rates))

	flops := g.TFLOPS(1815) * 1e12 * 0.85 * opts.KernelTime.Seconds()
	res := AblationRateResult{KernelMillis: opts.KernelTime.Seconds() * 1000}

	for k := 0; k < opts.Kernels; k++ {
		// Idle gap so each kernel is isolated, with jittered spacing so
		// low-rate sampling phases vary across kernels.
		r.Idle(time.Duration(20+3*k%17) * time.Millisecond)

		var watts []float64
		hook := r.PS.AttachSample(func(s core.Sample) {
			var total float64
			for _, w := range s.Watts {
				total += w
			}
			watts = append(watts, total)
		})
		kern := gpu.Kernel{FLOPs: flops, Waves: 1, Intensity: 0.8, Efficiency: 0.85}
		e0 := g.TrueEnergy()
		run := g.LaunchKernel(kern, r.Now())
		r.PS.Advance(run.End - r.Now())
		r.PS.DetachSample(hook)
		trueJ := g.TrueEnergy() - e0

		for i, rate := range rates {
			stride := int(20000 / rate)
			var est float64
			n := 0
			for j := 0; j < len(watts); j += stride {
				est += watts[j]
				n++
			}
			if n == 0 {
				// The kernel fit between two samples entirely: the tool
				// reports whatever it saw last — approximate with zero
				// dynamic energy observed.
				est = 0
			} else {
				est = est / float64(n) * run.Duration().Seconds()
			}
			relErr := abs(est-trueJ) / trueJ
			errSums[i] += relErr
			if relErr > errMax[i] {
				errMax[i] = relErr
			}
		}
	}
	for i, rate := range rates {
		res.Rows = append(res.Rows, AblationRateRow{
			RateHz:  rate,
			MeanErr: errSums[i] / float64(opts.Kernels),
			MaxErr:  errMax[i],
		})
	}
	return res, nil
}

// Table renders the ablation.
func (r AblationRateResult) Table() Table {
	t := Table{
		Title: fmt.Sprintf("Ablation: kernel-energy error vs sampling rate (%.0f ms kernels)",
			r.KernelMillis),
		Header: []string{"rate", "mean |error|", "max |error|", "corresponds to"},
	}
	labels := map[float64]string{
		20000: "PowerSensor3",
		2800:  "PowerSensor2",
		1000:  "PowerMon2 / Powenetics V2",
		100:   "typical scope logger",
		10:    "NVML / PCAT",
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%g Hz", row.RateHz),
			fmt.Sprintf("%.1f%%", row.MeanErr*100),
			fmt.Sprintf("%.1f%%", row.MaxErr*100),
			labels[row.RateHz],
		})
	}
	return t
}

// AblationAveragingResult quantifies the firmware's 6-sample averaging
// choice (Section III-B): noise versus the samples-per-average setting, at
// the fixed raw conversion budget.
type AblationAveragingResult struct {
	Rows []struct {
		SamplesPerAvg int
		OutputRateHz  float64
		NoiseStdW     float64
	}
}

// RunAblationAveraging sweeps the averaging depth on raw current-noise
// figures, showing the rate/noise trade the firmware fixes at 6.
func RunAblationAveraging() AblationAveragingResult {
	const rawRateHz = 120000.0 // per-channel raw conversion rate
	const rawNoiseW = 12.0 * 0.145
	var res AblationAveragingResult
	for _, n := range []int{1, 2, 4, 6, 12, 24} {
		res.Rows = append(res.Rows, struct {
			SamplesPerAvg int
			OutputRateHz  float64
			NoiseStdW     float64
		}{
			SamplesPerAvg: n,
			OutputRateHz:  rawRateHz / float64(n),
			NoiseStdW:     rawNoiseW / math.Sqrt(float64(n)),
		})
	}
	return res
}
