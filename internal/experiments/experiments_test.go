package experiments

import (
	"math"
	"strings"
	"testing"
	"time"
)

// ---------- rendering helpers ----------

func TestTableRender(t *testing.T) {
	tab := Table{
		Title:  "demo",
		Header: []string{"a", "bb"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
	}
	out := tab.Render()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "333") {
		t.Fatalf("render:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("%d lines", len(lines))
	}
}

func TestSeriesDecimate(t *testing.T) {
	s := Series{Name: "x"}
	for i := 0; i < 1000; i++ {
		s.X = append(s.X, float64(i))
		s.Y = append(s.Y, float64(i*i))
	}
	d := s.Decimate(10)
	if len(d.X) != 10 {
		t.Fatalf("decimated to %d", len(d.X))
	}
	if d.X[0] != 0 || d.X[9] != 999 {
		t.Fatalf("endpoints %v %v", d.X[0], d.X[9])
	}
}

func TestAsciiPlotProducesInk(t *testing.T) {
	s := Series{Name: "line", X: []float64{0, 1, 2}, Y: []float64{0, 1, 4}}
	out := AsciiPlot("t", 20, 8, s)
	if !strings.Contains(out, "*") {
		t.Fatalf("no marks:\n%s", out)
	}
}

func TestAsciiPlotEmpty(t *testing.T) {
	if out := AsciiPlot("t", 20, 8); !strings.Contains(out, "no data") {
		t.Fatalf("empty plot: %s", out)
	}
}

// ---------- Table I ----------

func TestTable1MatchesPaper(t *testing.T) {
	res := RunTable1()
	if len(res.Rows) != 4 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	// Paper values: module → (Eu mV, Ei A, Ep W).
	want := []struct {
		eu, ei, ep float64
	}{
		{28.6, 0.35, 4.2},
		{19.9, 0.35, 1.2},
		{28.6, 0.35, 7.0},
		{28.6, 0.41, 5.0},
	}
	for i, w := range want {
		r := res.Rows[i]
		if math.Abs(r.VoltErr*1000-w.eu) > 4 {
			t.Errorf("row %d (%s): Eu %.1f mV, paper %.1f", i, r.Module, r.VoltErr*1000, w.eu)
		}
		if math.Abs(r.CurrErr-w.ei) > 0.03 {
			t.Errorf("row %d (%s): Ei %.2f A, paper %.2f", i, r.Module, r.CurrErr, w.ei)
		}
		if math.Abs(r.PowErr-w.ep) > 0.35 {
			t.Errorf("row %d (%s): Ep %.1f W, paper %.1f", i, r.Module, r.PowErr, w.ep)
		}
	}
	if out := res.Table().Render(); !strings.Contains(out, "Table I") {
		t.Fatal("render broke")
	}
}

// ---------- Fig. 4 ----------

func TestFig4Shapes(t *testing.T) {
	res, err := RunFig4(Fig4Options{Samples: 8 * 1024, StepA: 2.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sweeps) != 4 {
		t.Fatalf("%d sweeps", len(res.Sweeps))
	}
	byName := map[string]Fig4Sweep{}
	for _, sw := range res.Sweeps {
		byName[sw.Module] = sw
	}
	worstAbsMean := func(sw Fig4Sweep) float64 {
		worst := 0.0
		for _, p := range sw.Points {
			if a := math.Abs(p.MeanErr); a > worst {
				worst = a
			}
		}
		return worst
	}
	// The paper's observation: the 3.3 V sensor is more accurate than the
	// 12 V sensor, because the current error is multiplied by the rail
	// voltage.
	if worstAbsMean(byName["3.3V 10A"]) >= worstAbsMean(byName["12V 10A"]) {
		t.Errorf("3.3 V sweep (%.2f W) should beat 12 V sweep (%.2f W)",
			worstAbsMean(byName["3.3V 10A"]), worstAbsMean(byName["12V 10A"]))
	}
	// Errors must stay within the same order as the worst-case budget.
	for name, sw := range byName {
		for _, p := range sw.Points {
			if math.Abs(p.MeanErr) > 8 {
				t.Errorf("%s at %.1f A: mean error %.2f W implausibly large", name, p.LoadA, p.MeanErr)
			}
			if p.MinErr > p.MeanErr || p.MaxErr < p.MeanErr {
				t.Errorf("%s at %.1f A: envelope does not bracket mean", name, p.LoadA)
			}
		}
	}
	if !strings.Contains(res.Plot(), "Fig. 4") {
		t.Error("plot broke")
	}
}

// ---------- Table II ----------

func TestTable2NoiseScaling(t *testing.T) {
	res, err := RunTable2(Table2Options{Samples: 32 * 1024})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 10 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	// Index rows by (rate, load).
	get := func(khz, load float64) Table2Row {
		for _, r := range res.Rows {
			if r.RateKHz == khz && r.LoadA == load {
				return r
			}
		}
		t.Fatalf("row %v/%v missing", khz, load)
		return Table2Row{}
	}
	for _, load := range []float64{0.5, 1.0} {
		r20 := get(20, load)
		r05 := get(0.5, load)
		// Paper: std at 20 kHz ~0.72 W; at 0.5 kHz ~0.115 W (≈ √40 gain).
		if load == 1.0 {
			if r20.Std < 0.4 || r20.Std > 1.1 {
				t.Errorf("20 kHz std = %.3f W, paper ~0.72", r20.Std)
			}
		}
		gain := r20.Std / r05.Std
		if gain < 4 || gain > 9 {
			t.Errorf("load %v: averaging gain %.2f, want ~√40≈6.3", load, gain)
		}
		// P2P must shrink with averaging.
		if r05.P2P >= r20.P2P {
			t.Errorf("load %v: p-p did not shrink (%.3f → %.3f)", load, r20.P2P, r05.P2P)
		}
		// Means stay near the expected power (12 V × load).
		mean20 := (r20.Min + r20.Max) / 2
		if math.Abs(mean20-12*load) > 1.5 {
			t.Errorf("load %v: block centre %.2f W far from %.2f W", load, mean20, 12*load)
		}
	}
}

// ---------- stability ----------

func TestStabilityShort(t *testing.T) {
	res, err := RunStability(StabilityOptions{
		Duration: 2 * time.Hour, Interval: 15 * time.Minute, Samples: 8 * 1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 9 {
		t.Fatalf("%d points", len(res.Points))
	}
	// The paper reports ±0.09 W fluctuation of the means; the model's
	// drift plus noise should stay in that regime (well under half a watt).
	if res.MeanFluctuation > 0.3 {
		t.Fatalf("mean fluctuation %.3f W too large", res.MeanFluctuation)
	}
	// Means must hover around 12 V × 7.5 A = 90 W.
	for _, p := range res.Points {
		if math.Abs(p.Mean-90) > 2 {
			t.Fatalf("point at %v: mean %.2f W", p.At, p.Mean)
		}
	}
}

// ---------- Fig. 5 ----------

func TestFig5StepResponse(t *testing.T) {
	res, err := RunFig5()
	if err != nil {
		t.Fatal(err)
	}
	// Plateaus at 12 V: 3.3 A → ~39.6 W, 8 A → 96 W.
	if math.Abs(res.LowW-39.6) > 3 {
		t.Errorf("low plateau %.1f W, want ~39.6", res.LowW)
	}
	if math.Abs(res.HighW-96) > 4 {
		t.Errorf("high plateau %.1f W, want ~96", res.HighW)
	}
	// The step must resolve within a few 50 µs samples (sensor bandwidth
	// 300 kHz ≫ sample rate): the paper's µs inset shows exactly this.
	if res.RiseSamples > 4 {
		t.Errorf("rise spans %d samples; the step should be nearly instant", res.RiseSamples)
	}
	if len(res.MsView.X) < 900 {
		t.Errorf("ms view has only %d samples", len(res.MsView.X))
	}
	if len(res.UsView.X) == 0 {
		t.Error("µs view empty")
	}
}

// ---------- Fig. 7 ----------

func TestFig7aNvidia(t *testing.T) {
	res, err := RunFig7a(Fig7Options{KernelDuration: 1500 * time.Millisecond, Tail: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	// PS3 must resolve more inter-wave dips than NVML.
	if res.DipsPS3 < 1 {
		t.Errorf("PS3 saw %d dips; expected the wave structure", res.DipsPS3)
	}
	if res.DipsVendor >= res.DipsPS3 {
		t.Errorf("NVML saw %d dips vs PS3 %d; NVML should miss them", res.DipsVendor, res.DipsPS3)
	}
	// PS3 energy tracks ground truth closely.
	if rel := math.Abs(res.PS3Joules-res.TrueJoules) / res.TrueJoules; rel > 0.08 {
		t.Errorf("PS3 energy off by %.1f%%", rel*100)
	}
	// NVIDIA takes a long time to return to idle (paper: over a second).
	if res.IdleReturn < 300*time.Millisecond {
		t.Errorf("idle return %v; NVIDIA should decay slowly", res.IdleReturn)
	}
}

func TestFig7bAMD(t *testing.T) {
	res, err := RunFig7b(Fig7Options{KernelDuration: 1500 * time.Millisecond, Tail: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	// The paper: AMD SMI closely matches PowerSensor3.
	if rel := math.Abs(res.VendorJoules-res.TrueJoules) / res.TrueJoules; rel > 0.1 {
		t.Errorf("AMD SMI energy off by %.1f%%; should closely match", rel*100)
	}
	if rel := math.Abs(res.PS3Joules-res.TrueJoules) / res.TrueJoules; rel > 0.08 {
		t.Errorf("PS3 energy off by %.1f%%", rel*100)
	}
}

// ---------- Fig. 8 / Fig. 10 ----------

func TestFig8Reduced(t *testing.T) {
	res, err := RunFig8(TuningOptions{Subsample: 32, Trials: 3,
		Clocks: []float64{1485, 1635, 1815}})
	if err != nil {
		t.Fatal(err)
	}
	// Shape assertions from the paper's Fig. 8 narrative.
	if res.FastestTFLOPS < 40 || res.FastestTFLOPS > 96 {
		t.Errorf("fastest %.1f TFLOP/s out of range", res.FastestTFLOPS)
	}
	if res.EfficiencyGain <= 0 {
		t.Errorf("most-efficient gains %.1f%%; must be positive", res.EfficiencyGain*100)
	}
	if res.Slowdown <= 0 {
		t.Errorf("most-efficient slowdown %.1f%%; must be positive", res.Slowdown*100)
	}
	// The headline claim: PowerSensor3 tunes ~3.25× faster.
	if res.Speedup < 2.2 || res.Speedup > 4.5 {
		t.Errorf("tuning speedup %.2fx, paper 3.25x", res.Speedup)
	}
	if res.ParetoSize < 2 {
		t.Errorf("Pareto front has %d points", res.ParetoSize)
	}
}

func TestFig10Reduced(t *testing.T) {
	res, err := RunFig10(TuningOptions{Subsample: 32, Trials: 3,
		Clocks: []float64{408, 816, 1300}})
	if err != nil {
		t.Fatal(err)
	}
	// Jetson peaks far below the discrete GPU (paper: ~25 vs ~80 TFLOP/s).
	if res.FastestTFLOPS > 45 {
		t.Errorf("Jetson fastest %.1f TFLOP/s too high", res.FastestTFLOPS)
	}
	if res.FastestTFLOPS < 8 {
		t.Errorf("Jetson fastest %.1f TFLOP/s too low", res.FastestTFLOPS)
	}
	if res.EfficiencyGain <= 0 || res.Slowdown <= 0 {
		t.Error("Pareto trade-off missing on Jetson")
	}
	if res.Speedup < 1.5 {
		t.Errorf("tuning speedup %.2fx", res.Speedup)
	}
}

// ---------- Fig. 12 ----------

func TestFig12aShape(t *testing.T) {
	res, err := RunFig12a(Fig12aOptions{
		Sizes:    []int{4, 64, 1024, 4096},
		PerPoint: 2 * time.Second,
		IODepth:  8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 4 {
		t.Fatalf("%d points", len(res.Points))
	}
	// Bandwidth and power must both rise with request size (until
	// saturation), and power must stay in a plausible SSD range.
	for i := 1; i < len(res.Points); i++ {
		if res.Points[i].MiBps < res.Points[i-1].MiBps*0.9 {
			t.Errorf("bandwidth fell from %d to %d KiB", res.Points[i-1].RequestKiB, res.Points[i].RequestKiB)
		}
	}
	first, last := res.Points[0], res.Points[len(res.Points)-1]
	if last.PowerW <= first.PowerW {
		t.Errorf("power flat: %.2f → %.2f W", first.PowerW, last.PowerW)
	}
	if first.PowerW < 1 || last.PowerW > 8 {
		t.Errorf("power range %.2f..%.2f W implausible", first.PowerW, last.PowerW)
	}
}

func TestFig12bShape(t *testing.T) {
	res, err := RunFig12b(Fig12bOptions{Duration: 40 * time.Second, IODepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Times) < 30 {
		t.Fatalf("only %d series points", len(res.Times))
	}
	// The paper's conclusion: bandwidth varies, power does not — bandwidth
	// is not a power proxy.
	if res.BandwidthCV < 0.02 {
		t.Errorf("bandwidth CV %.3f too smooth; GC variability missing", res.BandwidthCV)
	}
	if res.PowerCV > res.BandwidthCV {
		t.Errorf("power CV %.3f exceeds bandwidth CV %.3f; power should be the stable one",
			res.PowerCV, res.BandwidthCV)
	}
	if res.WriteAmp <= 1.1 {
		t.Errorf("write amplification %.2f; steady-state random writes must amplify", res.WriteAmp)
	}
	// Steady power near the paper's ~5 W.
	var mean float64
	for _, p := range res.Power[len(res.Power)/2:] {
		mean += p
	}
	mean /= float64(len(res.Power) - len(res.Power)/2)
	if mean < 2.5 || mean > 7 {
		t.Errorf("steady write power %.2f W, paper ~5 W", mean)
	}
}
