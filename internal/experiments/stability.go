package experiments

import (
	"fmt"
	"time"

	"repro/internal/analog"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/protocol"
	"repro/internal/stats"
)

// StabilityPoint is one measurement of the long-term run.
type StabilityPoint struct {
	At   time.Duration
	Mean float64
	Min  float64
	Max  float64
}

// StabilityResult reproduces the Section IV-B long-term stability run: a
// PCIe 8-pin module under a 7.5 A load, a block of samples every 15 minutes
// for 50 hours.
type StabilityResult struct {
	Points []StabilityPoint
	// MeanFluctuation is the peak deviation of per-point means from the
	// overall mean (the paper reports ±0.09 W).
	MeanFluctuation float64
}

// StabilityOptions sizes the run.
type StabilityOptions struct {
	Duration time.Duration // total run (paper: 50 h)
	Interval time.Duration // gap between blocks (paper: 15 min)
	Samples  int           // samples per block (paper: 128 k)
}

// DefaultStabilityOptions returns the paper's configuration.
func DefaultStabilityOptions() StabilityOptions {
	return StabilityOptions{Duration: 50 * time.Hour, Interval: 15 * time.Minute, Samples: 128 * 1024}
}

// RunStability executes the long-term run, fast-forwarding the device clock
// between measurement blocks.
func RunStability(opts StabilityOptions) (StabilityResult, error) {
	if opts.Samples <= 0 {
		opts.Samples = 128 * 1024
	}
	dev := device.New(3000, device.Slot{
		Module: analog.NewModule(analog.PCIe8Pin20A, 12),
		Source: device.BenchSource{
			// A realistic bench supply drifts slightly with lab temperature.
			Supply: &bench.Supply{Nominal: 12, DriftPerHour: 0.004},
			Load:   bench.ConstantLoad(7.5),
		},
	})
	ps, err := core.Open(dev)
	if err != nil {
		return StabilityResult{}, err
	}
	defer ps.Close()

	var res StabilityResult
	var means []float64
	for at := time.Duration(0); at <= opts.Duration; at += opts.Interval {
		powers := make([]float64, 0, opts.Samples)
		hook := ps.AttachSample(func(s core.Sample) {
			if len(powers) < opts.Samples {
				powers = append(powers, s.Watts[0])
			}
		})
		ps.Advance(time.Duration(opts.Samples+32) * protocol.SampleIntervalMicros * time.Microsecond)
		ps.DetachSample(hook)
		s := stats.Summarize(powers)
		res.Points = append(res.Points, StabilityPoint{At: at, Mean: s.Mean, Min: s.Min, Max: s.Max})
		means = append(means, s.Mean)

		dev.Skip(opts.Interval)
	}

	overall := stats.Mean(means)
	for _, m := range means {
		if d := abs(m - overall); d > res.MeanFluctuation {
			res.MeanFluctuation = d
		}
	}
	return res, nil
}

// Table summarises the run.
func (r StabilityResult) Table() Table {
	t := Table{
		Title:  "Section IV-B: long-term stability (7.5 A load)",
		Header: []string{"points", "mean fluctuation (W)", "first mean (W)", "last mean (W)"},
	}
	if len(r.Points) > 0 {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", len(r.Points)),
			fmt.Sprintf("±%.3f", r.MeanFluctuation),
			fmt.Sprintf("%.2f", r.Points[0].Mean),
			fmt.Sprintf("%.2f", r.Points[len(r.Points)-1].Mean),
		})
	}
	return t
}
