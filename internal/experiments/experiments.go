// Package experiments contains one harness per table and figure in the
// paper's evaluation (Section IV) and case studies (Section V). Each
// harness builds the full measurement chain — bench or DUT model, sensor
// modules, firmware, host library — runs the paper's procedure in virtual
// time, and returns typed results plus a textual rendering that mirrors the
// published table/figure.
//
// The experiment index lives in DESIGN.md; paper-versus-measured values are
// recorded in EXPERIMENTS.md. cmd/experiments regenerates everything.
package experiments

import (
	"fmt"
	"strings"
)

// Table is a rendered result table.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// Render formats the table as aligned text.
func (t Table) Render() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	sb.WriteString(t.Title + "\n")
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	line(t.Header)
	rule := make([]string, len(t.Header))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	line(rule)
	for _, row := range t.Rows {
		line(row)
	}
	return sb.String()
}

// Series is one plotted line of a figure.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Decimate returns the series reduced to at most n points (for rendering).
func (s Series) Decimate(n int) Series {
	if len(s.X) <= n || n < 2 {
		return s
	}
	out := Series{Name: s.Name}
	step := float64(len(s.X)-1) / float64(n-1)
	for i := 0; i < n; i++ {
		idx := int(float64(i) * step)
		out.X = append(out.X, s.X[idx])
		out.Y = append(out.Y, s.Y[idx])
	}
	return out
}

// AsciiPlot renders series as a crude terminal plot, good enough to see the
// shape the paper's figure shows.
func AsciiPlot(title string, width, height int, series ...Series) string {
	var xmin, xmax, ymin, ymax float64
	first := true
	for _, s := range series {
		for i := range s.X {
			if first {
				xmin, xmax, ymin, ymax = s.X[i], s.X[i], s.Y[i], s.Y[i]
				first = false
				continue
			}
			xmin = min(xmin, s.X[i])
			xmax = max(xmax, s.X[i])
			ymin = min(ymin, s.Y[i])
			ymax = max(ymax, s.Y[i])
		}
	}
	if first || xmax == xmin || ymax == ymin {
		return title + " (no data)\n"
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	marks := []byte{'*', '+', 'o', 'x', '#'}
	for si, s := range series {
		m := marks[si%len(marks)]
		for i := range s.X {
			c := int((s.X[i] - xmin) / (xmax - xmin) * float64(width-1))
			r := height - 1 - int((s.Y[i]-ymin)/(ymax-ymin)*float64(height-1))
			grid[r][c] = m
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s  [y: %.3g..%.3g, x: %.3g..%.3g]\n", title, ymin, ymax, xmin, xmax)
	for si, s := range series {
		fmt.Fprintf(&sb, "  %c = %s\n", marks[si%len(marks)], s.Name)
	}
	for _, row := range grid {
		sb.WriteString("  |" + string(row) + "\n")
	}
	sb.WriteString("  +" + strings.Repeat("-", width) + "\n")
	return sb.String()
}
