package experiments

import (
	"fmt"
	"time"

	"repro/internal/analog"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/fio"
	"repro/internal/ssd"
	"repro/internal/stats"
)

// ssdRig wires a simulated SSD behind a modified PCIe riser card with 3.3 V
// and 12 V slot sensor modules (Fig. 11): an M.2 drive in a PCIe adapter
// draws almost everything from the 3.3 V rail, with a small adapter share on
// 12 V.
type ssdRig struct {
	disk *ssd.Disk
	dev  *device.Device
	ps   *core.PowerSensor
}

const (
	ssd3v3Share = 0.92
	ssd12Share  = 0.08
)

func newSSDRig(disk *ssd.Disk, seed uint64) (*ssdRig, error) {
	rail := func(share, nominal float64) device.RailSource {
		return device.SourceFunc(func(t time.Duration) (float64, float64) {
			p := disk.PowerAt(t) * share
			v := nominal
			i := p / v
			v = nominal - i*0.01
			return v, p / v
		})
	}
	dev := device.New(seed,
		device.Slot{Module: analog.NewModule(analog.Slot10A, 3.3), Source: rail(ssd3v3Share, 3.3)},
		device.Slot{Module: analog.NewModule(analog.Slot10A, 12), Source: rail(ssd12Share, 12)},
	)
	ps, err := core.Open(dev)
	if err != nil {
		return nil, err
	}
	return &ssdRig{disk: disk, dev: dev, ps: ps}, nil
}

// sync advances the PowerSensor3 to the disk's current time.
func (r *ssdRig) sync(now time.Duration) {
	if d := now - r.dev.Now(); d > 0 {
		r.ps.Advance(d)
	}
}

// Fig12aPoint is one request-size measurement.
type Fig12aPoint struct {
	RequestKiB int
	PowerW     float64
	MiBps      float64
}

// Fig12aResult reproduces Fig. 12a: random-read power and bandwidth versus
// request size.
type Fig12aResult struct {
	Points []Fig12aPoint
}

// Fig12aOptions sizes the sweep.
type Fig12aOptions struct {
	// Sizes are the request sizes in KiB (nil = log-spaced 1..4096; the
	// paper sweeps every 1 KiB, which the virtual-time budget trades for a
	// log grid with identical shape).
	Sizes []int
	// PerPoint is the run length per size (paper: 10 s).
	PerPoint time.Duration
	// IODepth is the queue depth.
	IODepth int
}

// DefaultFig12aOptions returns the standard sweep.
func DefaultFig12aOptions() Fig12aOptions {
	return Fig12aOptions{
		Sizes:    []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096},
		PerPoint: 10 * time.Second,
		IODepth:  8,
	}
}

// RunFig12a sweeps random-read request sizes on a sequentially
// preconditioned drive, measuring power with PowerSensor3.
func RunFig12a(opts Fig12aOptions) (Fig12aResult, error) {
	if len(opts.Sizes) == 0 {
		opts = DefaultFig12aOptions()
	}
	if opts.PerPoint <= 0 {
		opts.PerPoint = 10 * time.Second
	}
	if opts.IODepth <= 0 {
		opts.IODepth = 8
	}
	disk := ssd.New(ssd.Samsung980Pro(), 12001)
	fio.PreconditionSequential(disk)
	rig, err := newSSDRig(disk, 12001)
	if err != nil {
		return Fig12aResult{}, err
	}
	defer rig.ps.Close()
	// Skip the sensor past the preconditioning writes.
	rig.dev.Skip(disk.Now())

	var res Fig12aResult
	for _, kib := range opts.Sizes {
		before := rig.ps.Read()
		r := fio.Run(disk, fio.Job{
			Pattern: fio.RandRead, BlockKiB: kib,
			IODepth: opts.IODepth, Runtime: opts.PerPoint,
			Seed: uint64(kib),
		}, rig.sync)
		after := rig.ps.Read()
		res.Points = append(res.Points, Fig12aPoint{
			RequestKiB: kib,
			PowerW:     core.Watts(before, after, -1),
			MiBps:      r.MeanMiBps,
		})
	}
	return res, nil
}

// Table renders the sweep.
func (r Fig12aResult) Table() Table {
	t := Table{
		Title:  "Fig. 12a: random reads — power and bandwidth vs request size",
		Header: []string{"request KiB", "power (W)", "bandwidth (MiB/s)"},
	}
	for _, p := range r.Points {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", p.RequestKiB),
			fmt.Sprintf("%.2f", p.PowerW),
			fmt.Sprintf("%.0f", p.MiBps),
		})
	}
	return t
}

// Fig12bResult reproduces Fig. 12b: power and bandwidth over a sustained
// random-write run on a preconditioned drive.
type Fig12bResult struct {
	Times []float64 // seconds
	MiBps []float64
	Power []float64

	// BandwidthCV and PowerCV are the coefficients of variation over the
	// steady part of the run — the paper's point is CV(bandwidth) ≫
	// CV(power).
	BandwidthCV float64
	PowerCV     float64
	WriteAmp    float64
}

// Fig12bOptions sizes the run.
type Fig12bOptions struct {
	Duration time.Duration // paper: >20 min
	IODepth  int
}

// DefaultFig12bOptions returns the paper's configuration.
func DefaultFig12bOptions() Fig12bOptions {
	return Fig12bOptions{Duration: 21 * time.Minute, IODepth: 8}
}

// RunFig12b preconditions the drive into steady state, then issues 4 KiB
// random writes while recording per-second power and bandwidth.
func RunFig12b(opts Fig12bOptions) (Fig12bResult, error) {
	if opts.Duration <= 0 {
		opts.Duration = 21 * time.Minute
	}
	if opts.IODepth <= 0 {
		opts.IODepth = 8
	}
	disk := ssd.New(ssd.Samsung980Pro(), 12002)
	fio.Precondition(disk, 12002)
	rig, err := newSSDRig(disk, 12002)
	if err != nil {
		return Fig12bResult{}, err
	}
	defer rig.ps.Close()
	rig.dev.Skip(disk.Now())

	// Per-second power via the interval mode, sampled from the tick hook.
	var res Fig12bResult
	lastState := rig.ps.Read()
	nextPowerMark := disk.Now() + time.Second
	onTick := func(now time.Duration) {
		rig.sync(now)
		for now >= nextPowerMark {
			st := rig.ps.Read()
			res.Power = append(res.Power, core.Watts(lastState, st, -1))
			lastState = st
			nextPowerMark += time.Second
		}
	}

	r := fio.Run(disk, fio.Job{
		Pattern: fio.RandWrite, BlockKiB: 4,
		IODepth: opts.IODepth, Runtime: opts.Duration,
		Seed: 12002, ReportGap: time.Second,
	}, onTick)

	res.Times = r.SeriesTimes
	res.MiBps = r.SeriesMiBps
	n := len(res.Times)
	if len(res.Power) > n {
		res.Power = res.Power[:n]
	}
	for len(res.Power) < n {
		res.Power = append(res.Power, res.Power[len(res.Power)-1])
	}

	// Steady-window statistics: skip the first quarter (SLC burst/ramp).
	if n >= 8 {
		start := n / 4
		bw := stats.Summarize(res.MiBps[start:])
		pw := stats.Summarize(res.Power[start:])
		if bw.Mean > 0 {
			res.BandwidthCV = bw.Std / bw.Mean
		}
		if pw.Mean > 0 {
			res.PowerCV = pw.Std / pw.Mean
		}
	}
	res.WriteAmp = disk.Stats().WriteAmplification()
	return res, nil
}

// Table summarises the write run.
func (r Fig12bResult) Table() Table {
	return Table{
		Title:  "Fig. 12b: sustained 4 KiB random writes",
		Header: []string{"seconds", "CV(bandwidth)", "CV(power)", "write amplification"},
		Rows: [][]string{{
			fmt.Sprintf("%d", len(r.Times)),
			fmt.Sprintf("%.3f", r.BandwidthCV),
			fmt.Sprintf("%.3f", r.PowerCV),
			fmt.Sprintf("%.2f", r.WriteAmp),
		}},
	}
}

// Plot renders power and bandwidth over time.
func (r Fig12bResult) Plot() string {
	bw := Series{Name: "bandwidth MiB/s", X: r.Times, Y: r.MiBps}
	pw := Series{Name: "power W x100", X: r.Times}
	for _, p := range r.Power {
		pw.Y = append(pw.Y, p*100)
	}
	return AsciiPlot("Fig. 12b: random writes over time", 76, 18,
		bw.Decimate(150), pw.Decimate(150))
}

// Plot renders the read sweep.
func (r Fig12aResult) Plot() string {
	bw := Series{Name: "bandwidth MiB/s"}
	pw := Series{Name: "power W x500"}
	for _, p := range r.Points {
		bw.X = append(bw.X, float64(p.RequestKiB))
		bw.Y = append(bw.Y, p.MiBps)
		pw.X = append(pw.X, float64(p.RequestKiB))
		pw.Y = append(pw.Y, p.PowerW*500)
	}
	return AsciiPlot("Fig. 12a: random reads vs request size", 76, 18, bw, pw)
}
