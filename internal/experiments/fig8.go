package experiments

import (
	"fmt"
	"time"

	"repro/internal/gpu"
	"repro/internal/kernels"
	"repro/internal/rig"
	"repro/internal/tuner"
)

// TuningResult reproduces Fig. 8 (RTX 4000 Ada) or Fig. 10 (Jetson AGX
// Orin): the energy-efficiency versus compute-performance cloud of all
// beamformer variants, its Pareto front, and the tuning-time comparison
// between PowerSensor3 and the on-board sensor.
type TuningResult struct {
	Device string

	Result tuner.Result // the PowerSensor3-strategy sweep

	// Headline numbers (paper, Fig. 8: 80.4 TFLOP/s @ 0.83 TFLOP/J fastest;
	// most efficient +12.7% efficiency, −21.5% performance).
	FastestTFLOPS   float64
	FastestTFLOPJ   float64
	EfficientTFLOPS float64
	EfficientTFLOPJ float64
	EfficiencyGain  float64 // most-efficient vs fastest, fractional
	Slowdown        float64 // most-efficient vs fastest, fractional
	ParetoSize      int

	// Tuning-time comparison (paper: 2274 s vs 7394 s → 3.25×).
	PS3Time     time.Duration
	OnboardTime time.Duration
	Speedup     float64
}

// TuningOptions sizes the sweep.
type TuningOptions struct {
	// Subsample > 1 keeps every n-th variant (tests); 1 = full space.
	Subsample int
	// Clocks restricts the clock sweep (nil = the device's ten clocks).
	Clocks []float64
	// Trials per configuration (0 = paper's 7).
	Trials int
}

// RunFig8 runs the sweep on the RTX 4000 Ada.
func RunFig8(opts TuningOptions) (TuningResult, error) {
	g := gpu.New(gpu.RTX4000Ada(), 8001)
	r, err := rig.NewPCIe(g, 8001)
	if err != nil {
		return TuningResult{}, err
	}
	defer r.Close()
	return runTuning(r, opts)
}

// RunFig10 runs the sweep on the Jetson AGX Orin through its USB-C supply.
func RunFig10(opts TuningOptions) (TuningResult, error) {
	g := gpu.New(gpu.JetsonAGXOrin(), 8002)
	r, err := rig.NewUSBC(g, 8002)
	if err != nil {
		return TuningResult{}, err
	}
	defer r.Close()
	return runTuning(r, opts)
}

// runTuning executes both strategies and assembles the comparison.
func runTuning(r *rig.Rig, opts TuningOptions) (TuningResult, error) {
	spec := r.GPU.Spec()
	topts := tuner.DefaultOptions(spec)
	if opts.Trials > 0 {
		topts.Trials = opts.Trials
	}
	if opts.Clocks != nil {
		topts.Clocks = opts.Clocks
	}
	if opts.Subsample > 1 {
		// The 512-variant space enumerates parameters in nested powers of
		// two, so an even stride would fix the inner parameters; bump to
		// the next odd stride to sample across every dimension.
		stride := opts.Subsample | 1
		space := kernels.Space()
		var cfgs []kernels.BeamformerConfig
		for i := 0; i < len(space); i += stride {
			cfgs = append(cfgs, space[i])
		}
		topts.Configs = cfgs
	}

	ps3, err := tuner.Tune(r, tuner.PowerSensor3Strategy, topts)
	if err != nil {
		return TuningResult{}, err
	}
	onboard, err := tuner.Tune(r, tuner.OnboardStrategy, topts)
	if err != nil {
		return TuningResult{}, err
	}

	res := TuningResult{Device: spec.Name, Result: ps3}
	fast := ps3.Fastest()
	eff := ps3.MostEfficient()
	res.FastestTFLOPS, res.FastestTFLOPJ = fast.TFLOPS, fast.TFLOPJ
	res.EfficientTFLOPS, res.EfficientTFLOPJ = eff.TFLOPS, eff.TFLOPJ
	res.EfficiencyGain = eff.TFLOPJ/fast.TFLOPJ - 1
	res.Slowdown = 1 - eff.TFLOPS/fast.TFLOPS
	res.ParetoSize = len(ps3.Front)
	res.PS3Time = ps3.TuningTime
	res.OnboardTime = onboard.TuningTime
	res.Speedup = float64(onboard.TuningTime) / float64(ps3.TuningTime)
	return res, nil
}

// Table summarises the tuning outcome.
func (r TuningResult) Table() Table {
	return Table{
		Title: fmt.Sprintf("Fig. 8/10: beamformer auto-tuning on %s (%d configs)",
			r.Device, len(r.Result.Measurements)),
		Header: []string{"metric", "value"},
		Rows: [][]string{
			{"fastest", fmt.Sprintf("%.1f TFLOP/s @ %.2f TFLOP/J", r.FastestTFLOPS, r.FastestTFLOPJ)},
			{"most efficient", fmt.Sprintf("%.1f TFLOP/s @ %.2f TFLOP/J", r.EfficientTFLOPS, r.EfficientTFLOPJ)},
			{"efficiency gain", fmt.Sprintf("+%.1f%%", r.EfficiencyGain*100)},
			{"slowdown", fmt.Sprintf("-%.1f%%", r.Slowdown*100)},
			{"Pareto points", fmt.Sprintf("%d", r.ParetoSize)},
			{"tuning time, PowerSensor3", fmt.Sprintf("%.0f s", r.PS3Time.Seconds())},
			{"tuning time, onboard", fmt.Sprintf("%.0f s", r.OnboardTime.Seconds())},
			{"speedup", fmt.Sprintf("%.2fx", r.Speedup)},
		},
	}
}

// Plot renders the efficiency/performance cloud with the Pareto front.
func (r TuningResult) Plot() string {
	cloud := Series{Name: "configurations"}
	for _, m := range r.Result.Measurements {
		cloud.X = append(cloud.X, m.TFLOPJ)
		cloud.Y = append(cloud.Y, m.TFLOPS)
	}
	front := Series{Name: "Pareto front"}
	for _, p := range r.Result.Front {
		front.X = append(front.X, p.X)
		front.Y = append(front.Y, p.Y)
	}
	return AsciiPlot(fmt.Sprintf("%s: TFLOP/s vs TFLOP/J", r.Device), 76, 20, cloud, front)
}
