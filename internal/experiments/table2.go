package experiments

import (
	"fmt"
	"time"

	"repro/internal/analog"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/protocol"
	"repro/internal/stats"
)

// Table2Row is the error summary at one effective sample rate for one load.
type Table2Row struct {
	RateKHz float64
	LoadA   float64
	Min     float64 // minimum power over the block, W
	Max     float64
	P2P     float64
	Std     float64
}

// Table2Result reproduces Table II: averaging blocks of 20 kHz samples
// trades time resolution for noise.
type Table2Result struct {
	Rows    []Table2Row
	Samples int
}

// Table2Options sizes the experiment.
type Table2Options struct {
	Samples int // base 20 kHz samples per load (paper: 128 k)
}

// RunTable2 measures a 12 V / 10 A module at 0.5 A and 1 A loads, collects a
// block of 20 kHz power samples, then block-averages to 10/5/1/0.5 kHz and
// summarises each rate.
func RunTable2(opts Table2Options) (Table2Result, error) {
	if opts.Samples <= 0 {
		opts.Samples = 128 * 1024
	}
	res := Table2Result{Samples: opts.Samples}
	for _, loadA := range []float64{0.5, 1.0} {
		dev := device.New(2000+uint64(loadA*10), device.Slot{
			Module: analog.NewModule(analog.Slot10A, 12),
			Source: device.BenchSource{
				Supply: &bench.Supply{Nominal: 12},
				Load:   bench.ConstantLoad(loadA),
			},
		})
		ps, err := core.Open(dev)
		if err != nil {
			return Table2Result{}, err
		}
		powers := make([]float64, 0, opts.Samples)
		hook := ps.AttachSample(func(s core.Sample) {
			if len(powers) < opts.Samples {
				powers = append(powers, s.Watts[0])
			}
		})
		ps.Advance(time.Duration(opts.Samples+32) * protocol.SampleIntervalMicros * time.Microsecond)
		ps.DetachSample(hook)
		ps.Close()

		for _, rate := range []struct {
			khz   float64
			block int
		}{{20, 1}, {10, 2}, {5, 4}, {1, 20}, {0.5, 40}} {
			avg := stats.BlockAverage(powers, rate.block)
			s := stats.Summarize(avg)
			res.Rows = append(res.Rows, Table2Row{
				RateKHz: rate.khz, LoadA: loadA,
				Min: s.Min, Max: s.Max, P2P: s.P2P(), Std: s.Std,
			})
		}
	}
	return res, nil
}

// Table renders the result in the paper's layout (rates as rows, one block
// of columns per load).
func (r Table2Result) Table() Table {
	t := Table{
		Title: fmt.Sprintf("Table II: error vs sample rate after averaging (%d samples)", r.Samples),
		Header: []string{"Fs kHz",
			"0.5A min W", "0.5A max W", "0.5A p-p W", "0.5A std W",
			"1A min W", "1A max W", "1A p-p W", "1A std W"},
	}
	byRate := map[float64][2]Table2Row{}
	for _, row := range r.Rows {
		pair := byRate[row.RateKHz]
		if row.LoadA == 0.5 {
			pair[0] = row
		} else {
			pair[1] = row
		}
		byRate[row.RateKHz] = pair
	}
	for _, khz := range []float64{20, 10, 5, 1, 0.5} {
		p := byRate[khz]
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%g", khz),
			fmt.Sprintf("%.2f", p[0].Min), fmt.Sprintf("%.2f", p[0].Max),
			fmt.Sprintf("%.3f", p[0].P2P), fmt.Sprintf("%.3f", p[0].Std),
			fmt.Sprintf("%.2f", p[1].Min), fmt.Sprintf("%.2f", p[1].Max),
			fmt.Sprintf("%.3f", p[1].P2P), fmt.Sprintf("%.3f", p[1].Std),
		})
	}
	return t
}
