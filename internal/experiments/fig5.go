package experiments

import (
	"fmt"
	"time"

	"repro/internal/analog"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/device"
)

// Fig5Result reproduces Fig. 5: the step response of a 12 V / 10 A sensor
// sampling at 20 kHz while the electronic load modulates between 3.3 A and
// 8 A at 100 Hz (8 A setpoint, 50% modulation depth).
type Fig5Result struct {
	// MsView is the power trace over several modulation periods.
	MsView Series
	// UsView zooms on one rising edge, microsecond scale.
	UsView Series
	// RiseSamples is how many 50 µs samples the 10%→90% transition spans.
	RiseSamples int
	// LowW and HighW are the settled plateau power levels.
	LowW, HighW float64
}

// RunFig5 captures the step response.
func RunFig5() (Fig5Result, error) {
	load := bench.SquareLoad{High: 8, Low: 3.3, FreqHz: 100}
	dev := device.New(4000, device.Slot{
		Module: analog.NewModule(analog.Slot10A, 12),
		Source: device.BenchSource{Supply: &bench.Supply{Nominal: 12}, Load: load},
	})
	ps, err := core.Open(dev)
	if err != nil {
		return Fig5Result{}, err
	}
	defer ps.Close()

	// Capture 50 ms = 5 modulation periods = 1000 samples.
	type sample struct {
		t time.Duration
		w float64
	}
	var trace []sample
	hook := ps.AttachSample(func(s core.Sample) {
		trace = append(trace, sample{s.DeviceTime, s.Watts[0]})
	})
	ps.Advance(50 * time.Millisecond)
	ps.DetachSample(hook)

	var res Fig5Result
	res.MsView.Name = "PowerSensor3 20 kHz"
	for _, s := range trace {
		res.MsView.X = append(res.MsView.X, float64(s.t)/float64(time.Millisecond))
		res.MsView.Y = append(res.MsView.Y, s.w)
	}

	// Plateau levels: split the samples at the midpoint of the observed
	// range and average each cluster — robust to the phase offset between
	// the modulator and the capture start.
	tmin, tmax := trace[0].w, trace[0].w
	for _, s := range trace {
		if s.w < tmin {
			tmin = s.w
		}
		if s.w > tmax {
			tmax = s.w
		}
	}
	split := (tmin + tmax) / 2
	lowSum, lowN, highSum, highN := 0.0, 0, 0.0, 0
	for _, s := range trace {
		if s.w >= split {
			highSum += s.w
			highN++
		} else {
			lowSum += s.w
			lowN++
		}
	}
	if lowN == 0 || highN == 0 {
		return Fig5Result{}, fmt.Errorf("fig5: no plateau samples")
	}
	res.LowW = lowSum / float64(lowN)
	res.HighW = highSum / float64(highN)

	// Locate a rising edge (low→high crossing) and measure its width.
	mid := (res.LowW + res.HighW) / 2
	lo10 := res.LowW + 0.1*(res.HighW-res.LowW)
	hi90 := res.LowW + 0.9*(res.HighW-res.LowW)
	edge := -1
	for i := 1; i < len(trace); i++ {
		if trace[i-1].w < mid && trace[i].w >= mid && i > 20 {
			edge = i
			break
		}
	}
	if edge < 0 {
		return Fig5Result{}, fmt.Errorf("fig5: no rising edge found")
	}
	// Walk outward from the crossing to the 10% and 90% levels.
	first := edge
	for first > 0 && trace[first-1].w > lo10 {
		first--
	}
	last := edge
	for last < len(trace)-1 && trace[last].w < hi90 {
		last++
	}
	res.RiseSamples = last - first

	// µs view: ±15 samples around the edge.
	res.UsView.Name = "PowerSensor3 (edge zoom)"
	for i := edge - 15; i <= edge+15 && i < len(trace); i++ {
		if i < 0 {
			continue
		}
		res.UsView.X = append(res.UsView.X, float64(trace[i].t)/float64(time.Microsecond))
		res.UsView.Y = append(res.UsView.Y, trace[i].w)
	}
	return res, nil
}

// Table summarises the step metrics.
func (r Fig5Result) Table() Table {
	return Table{
		Title:  "Fig. 5: step response, 3.3 A → 8 A at 100 Hz, 20 kHz sampling",
		Header: []string{"low plateau (W)", "high plateau (W)", "10–90% rise (samples)", "rise (µs)"},
		Rows: [][]string{{
			fmt.Sprintf("%.1f", r.LowW),
			fmt.Sprintf("%.1f", r.HighW),
			fmt.Sprintf("%d", r.RiseSamples),
			fmt.Sprintf("%d", r.RiseSamples*50),
		}},
	}
}

// Plot renders both views.
func (r Fig5Result) Plot() string {
	return AsciiPlot("Fig. 5 (ms view)", 72, 14, r.MsView.Decimate(200)) +
		AsciiPlot("Fig. 5 (µs view)", 72, 14, r.UsView)
}
