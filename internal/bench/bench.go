// Package bench models the laboratory measurement setup of Fig. 3 in the
// paper: a Keysight N6705B-class power supply, a Kniel E.Last-class
// programmable electronic load, and Fluke hand-held reference meters.
//
// The evaluation experiments (Fig. 4, Table II, Fig. 5, the long-term
// stability run) all sweep a known load against the sensor chain; this
// package provides those known loads as functions of virtual time.
package bench

import (
	"math"
	"time"
)

// Supply models a laboratory power supply: an ideal voltage source behind a
// small source impedance, with optional slow drift (thermal) used by the
// long-term stability experiment.
type Supply struct {
	// Nominal is the programmed output voltage.
	Nominal float64
	// SourceOhms is the output impedance; the rail sags by I×R under load.
	SourceOhms float64
	// DriftPerHour is a slow sinusoidal thermal drift amplitude in volts.
	DriftPerHour float64
}

// Voltage returns the rail voltage at time t while sourcing current i.
func (s *Supply) Voltage(t time.Duration, i float64) float64 {
	v := s.Nominal - i*s.SourceOhms
	if s.DriftPerHour != 0 {
		// One slow cycle per 10 hours; amplitude DriftPerHour.
		v += s.DriftPerHour * math.Sin(2*math.Pi*t.Hours()/10)
	}
	return v
}

// Load is a programmable electronic load: it demands a current as a function
// of virtual time. Implementations are pure functions of t so experiments
// can re-evaluate them at arbitrary sample instants.
type Load interface {
	// Current returns the current drawn at time t, in amperes. Negative
	// values model reversed flow (the Fig. 4 sweep spans −10 A to +10 A).
	Current(t time.Duration) float64
}

// ConstantLoad draws a fixed current.
type ConstantLoad float64

// Current implements Load.
func (c ConstantLoad) Current(time.Duration) float64 { return float64(c) }

// SquareLoad modulates between Base and Base±Depth·Base at FreqHz with a 50%
// duty cycle — the configuration of the step-response experiment (Fig. 5):
// 8 A with 100 Hz modulation and 50% depth steps between 8 A and 4 A... the
// paper plots steps from 3.3 A to 8 A, i.e. modulation around the mean.
type SquareLoad struct {
	High   float64 // current during the high half-period
	Low    float64 // current during the low half-period
	FreqHz float64 // full-cycle modulation frequency
	Phase  float64 // phase offset in fractions of a cycle
}

// Current implements Load.
func (s SquareLoad) Current(t time.Duration) float64 {
	cyc := t.Seconds()*s.FreqHz + s.Phase
	frac := cyc - math.Floor(cyc)
	if frac < 0.5 {
		return s.High
	}
	return s.Low
}

// SineLoad draws Mean + Amplitude·sin(2π f t); used for bandwidth probing.
type SineLoad struct {
	Mean      float64
	Amplitude float64
	FreqHz    float64
}

// Current implements Load.
func (s SineLoad) Current(t time.Duration) float64 {
	return s.Mean + s.Amplitude*math.Sin(2*math.Pi*s.FreqHz*t.Seconds())
}

// StepLoad switches from Before to After at the given instant.
type StepLoad struct {
	Before, After float64
	At            time.Duration
}

// Current implements Load.
func (s StepLoad) Current(t time.Duration) float64 {
	if t < s.At {
		return s.Before
	}
	return s.After
}

// RampLoad sweeps linearly from Start to End over the given duration, then
// holds End. Used to exercise sensor linearity.
type RampLoad struct {
	Start, End float64
	Over       time.Duration
}

// Current implements Load.
func (r RampLoad) Current(t time.Duration) float64 {
	if t >= r.Over {
		return r.End
	}
	frac := float64(t) / float64(r.Over)
	return r.Start + frac*(r.End-r.Start)
}

// LoadFunc adapts a plain function to the Load interface.
type LoadFunc func(t time.Duration) float64

// Current implements Load.
func (f LoadFunc) Current(t time.Duration) float64 { return f(t) }

// ReferenceMeter models the Fluke hand-held meters used to establish ground
// truth in the accuracy experiments. The 6000-count instruments resolve to
// 0.001 of range with a basic accuracy around 0.09% + 2 counts; far better
// than the sensor under test, which is what makes them usable references.
type ReferenceMeter struct {
	// Range is the full-scale range of the selected mode.
	Range float64
	// BasicAccuracy is the fractional gain accuracy (e.g. 0.0009).
	BasicAccuracy float64
	// Counts is the ±count error at the least significant digit.
	Counts int
}

// FlukeVoltmeter returns a Fluke 177-class voltmeter on the given range.
func FlukeVoltmeter(rangeV float64) ReferenceMeter {
	return ReferenceMeter{Range: rangeV, BasicAccuracy: 0.0009, Counts: 2}
}

// FlukeAmmeter returns a Fluke 77-class ammeter on the given range.
func FlukeAmmeter(rangeA float64) ReferenceMeter {
	return ReferenceMeter{Range: rangeA, BasicAccuracy: 0.0015, Counts: 2}
}

// WorstError returns the guaranteed error bound when reading value.
func (m ReferenceMeter) WorstError(value float64) float64 {
	digit := m.Range / 6000
	return math.Abs(value)*m.BasicAccuracy + float64(m.Counts)*digit
}

// Read returns the meter's indicated value: the true value quantized to the
// instrument's resolution. Reference meters in this simulation are treated
// as exact up to display resolution, since their error is negligible against
// the device under test.
func (m ReferenceMeter) Read(true_ float64) float64 {
	digit := m.Range / 6000
	return math.Round(true_/digit) * digit
}
