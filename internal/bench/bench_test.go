package bench

import (
	"math"
	"testing"
	"time"
)

func TestSupplySag(t *testing.T) {
	s := Supply{Nominal: 12, SourceOhms: 0.01}
	if v := s.Voltage(0, 0); v != 12 {
		t.Fatalf("unloaded voltage %v", v)
	}
	if v := s.Voltage(0, 10); math.Abs(v-11.9) > 1e-12 {
		t.Fatalf("loaded voltage %v, want 11.9", v)
	}
}

func TestSupplyDriftBounded(t *testing.T) {
	s := Supply{Nominal: 12, DriftPerHour: 0.005}
	for h := 0; h < 50; h++ {
		v := s.Voltage(time.Duration(h)*time.Hour, 0)
		if math.Abs(v-12) > 0.005+1e-12 {
			t.Fatalf("drift at %dh = %v", h, v-12)
		}
	}
}

func TestConstantLoad(t *testing.T) {
	var l Load = ConstantLoad(7.5)
	if l.Current(time.Hour) != 7.5 {
		t.Fatal("constant load not constant")
	}
}

func TestSquareLoadDutyCycle(t *testing.T) {
	l := SquareLoad{High: 8, Low: 3.3, FreqHz: 100}
	period := 10 * time.Millisecond
	// First half-period high, second low.
	if got := l.Current(period / 4); got != 8 {
		t.Fatalf("quarter period: %v", got)
	}
	if got := l.Current(3 * period / 4); got != 3.3 {
		t.Fatalf("three-quarter period: %v", got)
	}
	// Periodicity.
	if l.Current(period/4) != l.Current(period/4+period*17) {
		t.Fatal("not periodic")
	}
}

func TestSquareLoadMeanIsHalfway(t *testing.T) {
	l := SquareLoad{High: 8, Low: 3.3, FreqHz: 100}
	var sum float64
	const n = 10000
	for i := 0; i < n; i++ {
		sum += l.Current(time.Duration(i) * 10 * time.Microsecond) // 100 ms total
	}
	mean := sum / n
	want := (8 + 3.3) / 2
	if math.Abs(mean-want) > 0.01 {
		t.Fatalf("mean = %v, want %v", mean, want)
	}
}

func TestSineLoad(t *testing.T) {
	l := SineLoad{Mean: 5, Amplitude: 2, FreqHz: 1}
	if got := l.Current(0); math.Abs(got-5) > 1e-12 {
		t.Fatalf("t=0: %v", got)
	}
	if got := l.Current(250 * time.Millisecond); math.Abs(got-7) > 1e-9 {
		t.Fatalf("quarter cycle: %v", got)
	}
}

func TestStepLoad(t *testing.T) {
	l := StepLoad{Before: 3.3, After: 8, At: time.Millisecond}
	if l.Current(999*time.Microsecond) != 3.3 {
		t.Fatal("before step")
	}
	if l.Current(time.Millisecond) != 8 {
		t.Fatal("at step")
	}
}

func TestRampLoad(t *testing.T) {
	l := RampLoad{Start: -10, End: 10, Over: time.Second}
	if got := l.Current(0); got != -10 {
		t.Fatalf("start: %v", got)
	}
	if got := l.Current(500 * time.Millisecond); math.Abs(got) > 1e-9 {
		t.Fatalf("midpoint: %v", got)
	}
	if got := l.Current(2 * time.Second); got != 10 {
		t.Fatalf("after end: %v", got)
	}
}

func TestLoadFunc(t *testing.T) {
	l := LoadFunc(func(t time.Duration) float64 { return t.Seconds() })
	if l.Current(2*time.Second) != 2 {
		t.Fatal("LoadFunc passthrough")
	}
}

func TestReferenceMeterBetterThanDUT(t *testing.T) {
	// The references must contribute far less *power* error at the Fig. 4
	// operating point (12 V, 10 A) than the DUT's ±4.2 W worst case.
	v := FlukeVoltmeter(60)
	a := FlukeAmmeter(10)
	powerErr := v.WorstError(12)*10 + a.WorstError(10)*12
	if powerErr > 4.2/5 {
		t.Fatalf("reference power error %v W too large vs DUT's 4.2 W", powerErr)
	}
}

func TestReferenceMeterQuantizes(t *testing.T) {
	m := FlukeVoltmeter(60)
	digit := 60.0 / 6000
	got := m.Read(12.0037)
	if math.Mod(got, digit) > 1e-9 && digit-math.Mod(got, digit) > 1e-9 {
		t.Fatalf("reading %v not on a digit boundary", got)
	}
	if math.Abs(got-12.0037) > digit/2+1e-9 {
		t.Fatalf("reading %v too far from input", got)
	}
}
