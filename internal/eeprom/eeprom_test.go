package eeprom

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestWriteRead(t *testing.T) {
	s := New()
	if err := s.Write(1, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	got, err := s.Read(1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte("hello")) {
		t.Fatalf("got %q", got)
	}
}

func TestReadMissing(t *testing.T) {
	s := New()
	if _, err := s.Read(7); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestOverwriteReturnsLatest(t *testing.T) {
	s := New()
	for i := 0; i < 5; i++ {
		if err := s.Write(2, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	got, err := s.Read(2)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 4 {
		t.Fatalf("latest value = %v", got)
	}
}

func TestDelete(t *testing.T) {
	s := New()
	s.Write(3, []byte("x"))
	s.Delete(3)
	if _, err := s.Read(3); err != nil {
		// A tombstone is an empty value, Read still finds it.
		t.Fatalf("read after delete: %v", err)
	}
	got, _ := s.Read(3)
	if len(got) != 0 {
		t.Fatalf("deleted key has value %q", got)
	}
	for _, k := range s.Keys() {
		if k == 3 {
			t.Fatal("deleted key listed")
		}
	}
}

func TestReservedKey(t *testing.T) {
	s := New()
	if err := s.Write(0xFF, []byte("x")); !errors.Is(err, ErrBadKey) {
		t.Fatalf("err = %v", err)
	}
}

func TestValueTooBig(t *testing.T) {
	s := New()
	if err := s.Write(1, make([]byte, MaxValueLen+1)); !errors.Is(err, ErrValueTooBig) {
		t.Fatalf("err = %v", err)
	}
}

func TestCompactionPreservesData(t *testing.T) {
	s := New()
	// Hammer a few keys until several compactions have occurred.
	for i := 0; i < 2000; i++ {
		key := byte(i % 8)
		if err := s.Write(key, []byte{byte(i), byte(i >> 8)}); err != nil {
			t.Fatal(err)
		}
	}
	if s.Erases() == 0 {
		t.Fatal("expected at least one compaction")
	}
	for key := byte(0); key < 8; key++ {
		got, err := s.Read(key)
		if err != nil {
			t.Fatalf("key %d lost after compaction: %v", key, err)
		}
		// Last write of key k was iteration i where i%8==k; find it.
		last := 2000 - 8 + int(key)
		want := []byte{byte(last), byte(last >> 8)}
		if !bytes.Equal(got, want) {
			t.Fatalf("key %d = %v, want %v", key, got, want)
		}
	}
}

func TestWearIsBounded(t *testing.T) {
	s := New()
	for i := 0; i < 10000; i++ {
		s.Write(byte(i%4), []byte{1, 2, 3, 4})
	}
	// Each page holds ~capacity/12 records; 10k writes should cost far
	// fewer than 10k/10 erases.
	if s.Erases() > 1000 {
		t.Fatalf("excessive wear: %d erases", s.Erases())
	}
}

func TestSnapshotRestore(t *testing.T) {
	s := New()
	s.Write(1, []byte("a"))
	s.Write(9, []byte("bb"))
	s.Write(1, []byte("a2"))
	snap := s.Snapshot()

	fresh := New()
	if err := fresh.Restore(snap); err != nil {
		t.Fatal(err)
	}
	for k, want := range snap {
		got, err := fresh.Read(k)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("key %d: %q != %q", k, got, want)
		}
	}
}

func TestKeysSorted(t *testing.T) {
	s := New()
	s.Write(9, []byte("x"))
	s.Write(1, []byte("y"))
	s.Write(5, []byte("z"))
	keys := s.Keys()
	if len(keys) != 3 || keys[0] != 1 || keys[1] != 5 || keys[2] != 9 {
		t.Fatalf("keys = %v", keys)
	}
}

// Property: after any sequence of writes, Read(k) returns the last value
// written to k.
func TestQuickLastWriteWins(t *testing.T) {
	f := func(ops []struct {
		Key byte
		Val uint32
	}) bool {
		s := New()
		want := map[byte][]byte{}
		for _, op := range ops {
			k := op.Key % 16
			v := []byte{byte(op.Val), byte(op.Val >> 8)}
			if s.Write(k, v) != nil {
				return false
			}
			want[k] = v
		}
		for k, w := range want {
			got, err := s.Read(k)
			if err != nil || !bytes.Equal(got, w) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
