// Package eeprom emulates the STM32 virtual-EEPROM layer the firmware uses
// to persist sensor configuration in flash (Section III-B1).
//
// Real STM32 parts have no EEPROM; the vendor's emulation layer maps logical
// variables onto flash pages that can only be erased in bulk, so writes
// append new records until the page fills, then compact into the sibling
// page. The model reproduces that behaviour — including the erase cycle
// accounting — because the one-time-calibration claim of the paper rests on
// configuration surviving power cycles without wearing out the flash.
package eeprom

import (
	"errors"
	"fmt"
)

const (
	// PageSize is the usable record capacity per emulated page. The
	// STM32F411 erases flash in 16 KiB sectors; the emulation layer uses a
	// conservative slice of one sector.
	PageSize = 1024

	// recordSize is one logical record: a 1-byte key plus a value chunk.
	recordSize = 1 + chunkSize
	chunkSize  = 8
)

// Errors reported by the EEPROM layer.
var (
	ErrFull        = errors.New("eeprom: storage full")
	ErrNotFound    = errors.New("eeprom: key not found")
	ErrBadKey      = errors.New("eeprom: key 0xFF is reserved for erased cells")
	ErrValueTooBig = errors.New("eeprom: value exceeds maximum length")
)

// MaxValueLen bounds a stored value so it always fits one page worth of
// chunks.
const MaxValueLen = 128

type record struct {
	key  byte
	data []byte
}

// Store is a key→bytes store with flash-like append/compact semantics.
// The zero value is not usable; call New.
type Store struct {
	active   []record // append-only until compaction
	erases   int      // page-erase cycles performed
	writes   int      // record writes performed
	capacity int      // records per page
}

// New returns an empty Store.
func New() *Store {
	return &Store{capacity: PageSize / recordSize * chunkSize}
}

// Write stores value under key, appending records and compacting when the
// active page fills. Keys are logical sensor/config identifiers.
func (s *Store) Write(key byte, value []byte) error {
	if key == 0xFF {
		return ErrBadKey
	}
	if len(value) > MaxValueLen {
		return ErrValueTooBig
	}
	s.active = append(s.active, record{key: key, data: append([]byte(nil), value...)})
	s.writes++
	if s.footprint() > s.capacity {
		if err := s.compact(); err != nil {
			return err
		}
	}
	return nil
}

// Read returns the most recently written value for key.
func (s *Store) Read(key byte) ([]byte, error) {
	for i := len(s.active) - 1; i >= 0; i-- {
		if s.active[i].key == key {
			return append([]byte(nil), s.active[i].data...), nil
		}
	}
	return nil, fmt.Errorf("%w: 0x%02x", ErrNotFound, key)
}

// Delete removes key by writing a zero-length tombstone record.
func (s *Store) Delete(key byte) {
	s.active = append(s.active, record{key: key, data: nil})
	s.writes++
}

// Keys returns the keys currently holding non-empty values, in ascending
// order.
func (s *Store) Keys() []byte {
	latest := map[byte][]byte{}
	for _, r := range s.active {
		latest[r.key] = r.data
	}
	var keys []byte
	for k := byte(0); k < 0xFF; k++ {
		if v, ok := latest[k]; ok && len(v) > 0 {
			keys = append(keys, k)
		}
	}
	return keys
}

// footprint is the flash consumption of the active page in value bytes.
func (s *Store) footprint() int {
	n := 0
	for _, r := range s.active {
		n += chunkSize + len(r.data)
	}
	return n
}

// compact migrates only the latest value per key into a fresh page,
// consuming one erase cycle — the wear-levelling step of the ST emulation
// layer.
func (s *Store) compact() error {
	latest := map[byte][]byte{}
	var order []byte
	for _, r := range s.active {
		if _, seen := latest[r.key]; !seen {
			order = append(order, r.key)
		}
		latest[r.key] = r.data
	}
	var fresh []record
	used := 0
	for _, k := range order {
		v := latest[k]
		if len(v) == 0 {
			continue // drop tombstones
		}
		fresh = append(fresh, record{key: k, data: v})
		used += chunkSize + len(v)
	}
	if used > s.capacity {
		return ErrFull
	}
	s.active = fresh
	s.erases++
	return nil
}

// Erases returns how many page-erase cycles have occurred; flash endurance
// is typically 10k cycles, so this should stay tiny under the paper's
// calibrate-once usage model.
func (s *Store) Erases() int { return s.erases }

// Writes returns the total record writes performed.
func (s *Store) Writes() int { return s.writes }

// Snapshot serializes the store's logical content (for device "power
// cycling" in tests and for psconfig backups).
func (s *Store) Snapshot() map[byte][]byte {
	out := map[byte][]byte{}
	for _, k := range s.Keys() {
		v, _ := s.Read(k)
		out[k] = v
	}
	return out
}

// Restore replaces the store content with the given snapshot.
func (s *Store) Restore(snap map[byte][]byte) error {
	s.active = nil
	for k := byte(0); k < 0xFF; k++ {
		if v, ok := snap[k]; ok {
			if err := s.Write(k, v); err != nil {
				return err
			}
		}
	}
	return nil
}
