// Package rig wires a simulated accelerator to a PowerSensor3 the way the
// paper's case studies do: discrete GPUs through a modified riser card (slot
// 3.3 V + slot 12 V modules) plus the external PCIe 8-pin module (Fig. 6),
// and SoC boards through a single USB-C module (Fig. 9).
package rig

import (
	"time"

	"repro/internal/analog"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/gpu"
)

// Rig is a device-under-test with an attached, open PowerSensor3.
type Rig struct {
	GPU *gpu.GPU
	Dev *device.Device
	PS  *core.PowerSensor
}

// NewPCIe builds the discrete-GPU measurement setup: three sensor modules
// intercepting the 3.3 V slot, 12 V slot and external 12 V rails.
func NewPCIe(g *gpu.GPU, seed uint64) (*Rig, error) {
	slot3, slot12, ext12 := g.PCIeRails()
	dev := device.New(seed,
		device.Slot{Module: analog.NewModule(analog.Slot10A, 3.3), Source: slot3},
		device.Slot{Module: analog.NewModule(analog.Slot10A, 12), Source: slot12},
		device.Slot{Module: analog.NewModule(analog.PCIe8Pin20A, 12), Source: ext12},
	)
	ps, err := core.Open(dev)
	if err != nil {
		return nil, err
	}
	return &Rig{GPU: g, Dev: dev, PS: ps}, nil
}

// NewUSBC builds the SoC measurement setup: one USB-C module carrying the
// whole system supply.
func NewUSBC(g *gpu.GPU, seed uint64) (*Rig, error) {
	dev := device.New(seed,
		device.Slot{Module: analog.NewModule(analog.USBC, 20), Source: g.USBCRail()},
	)
	ps, err := core.Open(dev)
	if err != nil {
		return nil, err
	}
	return &Rig{GPU: g, Dev: dev, PS: ps}, nil
}

// Now returns the shared virtual time of the rig.
func (r *Rig) Now() time.Duration { return r.Dev.Now() }

// Sensor returns the attached PowerSensor3 — the accessor fleet adapters use
// to reach the sample stream without knowing the rig's concrete wiring.
func (r *Rig) Sensor() *core.PowerSensor { return r.PS }

// MeasureKernel launches k now, advances through its execution, and returns
// its duration plus the total board energy PowerSensor3 measured over the
// window — the paper's "instant capturing of the energy consumption of GPU
// kernels".
func (r *Rig) MeasureKernel(k gpu.Kernel) (time.Duration, float64) {
	run := r.GPU.LaunchKernel(k, r.Now())
	before := r.PS.Read()
	r.PS.Advance(run.End - r.Now())
	after := r.PS.Read()
	return run.Duration(), core.Joules(before, after, -1)
}

// Idle advances the rig without work, letting the DUT settle.
func (r *Rig) Idle(d time.Duration) {
	r.PS.Advance(d)
}

// Skip fast-forwards the rig's timeline without generating samples — used
// when the measurement chain is not needed (e.g. the onboard-sensor dwell,
// which only polls the vendor API).
func (r *Rig) Skip(d time.Duration) {
	r.GPU.PowerAt(r.Now() + d)
	r.Dev.Skip(d)
}

// Close releases the sensor.
func (r *Rig) Close() {
	r.PS.Close()
}
