package rig

import (
	"math"
	"testing"
	"time"

	"repro/internal/gpu"
	"repro/internal/kernels"
)

func TestPCIeRigMeasuresKernelEnergy(t *testing.T) {
	g := gpu.New(gpu.RTX4000Ada(), 1)
	r, err := NewPCIe(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	g.SetAppClock(1815)
	k := gpu.Kernel{Name: "x", FLOPs: 20e12, Waves: 1, Intensity: 0.8, Efficiency: 0.8}
	r.Idle(50 * time.Millisecond)

	e0 := g.TrueEnergy()
	dur, joules := r.MeasureKernel(k)
	trueJ := g.TrueEnergy() - e0

	if dur <= 0 {
		t.Fatal("non-positive duration")
	}
	if relErr := math.Abs(joules-trueJ) / trueJ; relErr > 0.08 {
		t.Fatalf("PS3 energy %v J vs true %v J (%.1f%% error)", joules, trueJ, relErr*100)
	}
}

func TestUSBCRigSeesCarrierBoard(t *testing.T) {
	g := gpu.New(gpu.JetsonAGXOrin(), 2)
	r, err := NewUSBC(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	r.Idle(200 * time.Millisecond)
	st := r.PS.Read()
	total := st.Watts[0]
	module := g.ModulePower(r.Now())
	if total <= module {
		t.Fatalf("USB-C measurement %v W must include the carrier board (module %v W)",
			total, module)
	}
}

func TestRigTimelineAdvances(t *testing.T) {
	g := gpu.New(gpu.RTX4000Ada(), 3)
	r, err := NewPCIe(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	t0 := r.Now()
	r.Idle(30 * time.Millisecond)
	if r.Now()-t0 < 29*time.Millisecond {
		t.Fatalf("timeline advanced only %v", r.Now()-t0)
	}
}

func TestBeamformerKernelOnRig(t *testing.T) {
	g := gpu.New(gpu.RTX4000Ada(), 4)
	r, err := NewPCIe(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	g.SetAppClock(1815)
	cfg := kernels.Space()[100]
	k := cfg.Kernel(g.Spec(), 1815, kernels.DefaultProblem())
	dur, joules := r.MeasureKernel(k)
	if joules <= 0 {
		t.Fatalf("energy %v", joules)
	}
	tflops := kernels.DefaultProblem().FLOPs() / dur.Seconds() / 1e12
	if tflops < 5 || tflops > 96 {
		t.Fatalf("TFLOPS = %v out of plausible range", tflops)
	}
}
