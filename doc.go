// Package repro is a from-scratch Go reproduction of "PowerSensor3: A Fast
// and Accurate Open Source Power Measurement Tool" (ISPASS 2025).
//
// The implementation lives under internal/: the host library in
// internal/core, the simulated hardware (sensors, ADC, firmware, USB,
// display) in their own packages, the device-under-test models (GPUs, SSD)
// beside them, and one experiment harness per paper table/figure in
// internal/experiments. See DESIGN.md for the full inventory and
// EXPERIMENTS.md for paper-versus-measured results.
//
// # Fleet telemetry
//
// Beyond the single-rig tools, the repository runs whole fleets:
// internal/fleet drives many named stations (PCIe GPUs, SoC boards, SSDs —
// assembled by internal/simsetup) concurrently, each on its own goroutine,
// downsampling every 20 kHz stream into per-station ring buffers with
// health counters; internal/export serves a fleet over HTTP.
//
// # The psd daemon
//
// Command psd is the served entry point:
//
//	psd [-listen :9120] [-fleet gpu0=rtx4000ada,gpu1=w7700,soc0=jetson,ssd0=ssd]
//	    [-seed 1] [-rate 1] [-slice 5ms] [-block 20] [-ring 4096] [-warmup 2s]
//
// It serves GET /metrics (Prometheus text exposition), /api/fleet (JSON
// status of every station), /api/device/{name}/trace (recent downsampled
// trace as CSV or JSON) and /healthz. A scrape yields per-station gauges
// and counters such as:
//
//	powersensor_watts{device="gpu0",pair="2"} 55.88
//	powersensor_board_watts{device="gpu0"} 67.7
//	powersensor_joules_total{device="gpu0"} 154.9
//	powersensor_samples_total{device="gpu0"} 40000
//	powersensor_resyncs_total{device="gpu0"} 0
//
// See the cmd/psd package documentation for the full flag and endpoint
// reference, and examples/fleet for a minimal in-process fleet scrape.
package repro
