// Package repro is a from-scratch Go reproduction of "PowerSensor3: A Fast
// and Accurate Open Source Power Measurement Tool" (ISPASS 2025).
//
// The implementation lives under internal/: the host library in
// internal/core, the simulated hardware (sensors, ADC, firmware, USB,
// display) in their own packages, the device-under-test models (GPUs, SSD)
// beside them, and one experiment harness per paper table/figure in
// internal/experiments. See DESIGN.md for the full inventory and
// EXPERIMENTS.md for paper-versus-measured results.
//
// # The streaming source layer
//
// Every measurement backend — the 20 kHz PowerSensor3 host library and
// the paper's software-meter baselines (NVML, AMD SMI, the Jetson
// INA3221, RAPL) — is unified behind internal/source: a streaming source
// with metadata (backend name, native sample rate, channel labels) and
// columnar batch delivery, so the layers above never assume a fixed rate:
//
//	device.Device ── core.PowerSensor      gpu.GPU / vendorapi.CPU
//	(USB protocol)   (20 kHz sample hooks)  (vendor counters)
//	        │                                   │
//	source.Sensor ◄── ReadInto ──► source.Polled (native cadence)
//	        └────────────┬──────────────────────┘
//	             source.Source          ← internal/simsetup builds
//	        (Meta + ReadInto(d, *Batch))  named stations per kind
//	                     │
//	               fleet.Manager        ← block size & ring pacing
//	          (per-station goroutines,    derived from Meta.RateHz
//	           downsampling rings)
//	                     │
//	              export.Exporter       ← backend kind + rate as
//	          (/metrics, /api/fleet)      labels and JSON fields
//
// Data flows in columns, not structs: ReadInto fills a caller-owned
// source.Batch — flat Time/Chans/Total arrays — with the samples a
// virtual-time slice produced, so a 20 kHz sensor hands the fleet
// hundreds of samples per call and the fleet folds whole columns with
// tight reduction loops instead of dispatching per sample.
//
// # The derived-source pipeline layer
//
// On top of the source layer, internal/pipeline derives *views*:
// composable Source wrappers that stack on any backend and stay on the
// zero-allocation columnar path —
//
//	any source.Source        powersensor3 @ 20 kHz, rapl @ 1 kHz, ...
//	      │
//	  Resample               rate conversion by energy-conserving bin
//	      │                  averaging; marker indices remapped so no
//	      │                  time-synced mark is lost
//	  Calibrate              per-channel gain/offset overlay applied in
//	      │                  the batch fold (energy re-integrated)
//	  RateLimit              max delivered rate for polled meters, plus
//	      │                  cumulative sampling-overhead accounting
//	   Smooth                EWMA over Total and every channel
//	      │
//	 fleet.Device            block size and ring pacing derived from the
//	      │                  stage-rewritten Meta.RateHz — no fleet changes
//	export.Exporter          derived backend ("powersensor3+resample"),
//	                         rewritten rate and overhead as scrape series
//
// Stages compose via pipeline.Chain and each rewrites the Meta it
// presents upward, so a raw 20 kHz station and its 1 kHz resampled,
// recalibrated view serve side by side from one rig; simsetup's fleet
// spec exposes the stack as a pipe syntax
// (gpu0lo=rtx4000ada@0|resample:1000|calib:0.98 — grammar on
// simsetup.ParseFleet). A RateLimit stage also accounts the measurement's
// own footprint — cumulative wall time spent sampling inside ReadInto —
// published per station as Status.OverheadSeconds and the
// powersensor_source_overhead_seconds series, the overhead concern
// RAPL-based comparisons quantify.
//
// # Fleet telemetry and the zero-allocation contract
//
// Beyond the single-rig tools, the repository runs whole fleets:
// internal/fleet drives many named stations (PCIe GPUs, SoC boards, SSDs,
// software meters — assembled by internal/simsetup) concurrently, each on
// its own goroutine, downsampling every source's stream into per-station
// ring buffers with health counters; internal/export serves a fleet over
// HTTP.
//
// Fleets are dynamic while serving. A station can be adopted against a
// running manager (its driver goroutine spawns immediately) and retired
// at any time: the copy-on-write device-list swap is the commit point for
// concurrent snapshots and scrapes, after which the driver stops, the
// in-flight downsample block drains into the ring as one final point,
// subscriptions receive that point and close, and the source is released.
// Each station moves through an explicit lifecycle:
//
//	          Manager.Start / hot Add
//	adopted ───────────────────────────► started
//	   ▲                                    │
//	   │            Manager.Stop            │
//	   └────────────────────────────────────┤
//	                                        │ Manager.Remove
//	                                        ▼
//	                                    stopping ──drain──► closed
//	                                (driver exits,     (subscriptions
//	                                 final block        closed, source
//	                                 drains to ring)    released)
//
// Churn is observable end to end: the manager counts adoptions and
// retirements (exported as powersensor_fleet_{adopted,retired}_total),
// every Status carries its station's lifecycle state, and scrapes racing
// a retirement stay well-formed — the exposition simply stops listing the
// retired station's series.
//
// The steady-state sample path allocates nothing, by contract: batches
// reuse their caller-owned columns, downsample blocks accumulate into
// fixed-size running sums, and ring points copy into a flat per-ring
// float64 arena preallocated at construction (regression-tested with
// testing.AllocsPerRun in internal/source and internal/fleet). The
// scrape path is decoupled from ingest: each station publishes its
// telemetry through per-field atomic cells refreshed at block and step
// boundaries, so Status, Manager.Snapshot and a /metrics scrape of a
// 256-station fleet never take a device ingest mutex — measurement cost
// stays off the measured system's critical path, the same property the
// paper claims for the sensor itself. BENCH_fleet.json tracks the
// ingest and scrape numbers across PRs.
//
// # Fleet sharding
//
// At 10k stations a single device list and a single cached exposition
// body both become fleet-wide choke points: every Add/Remove rewrites
// one copy-on-write slice, and one busy station invalidates the whole
// body cache, so every scrape re-renders every station. The manager
// therefore shards. Station names hash (FNV-1a) onto a fixed shard
// count chosen at construction (fleet.Config.Shards, psd -shards,
// default 8, -shards 1 recovers the unsharded daemon), and each shard
// owns its slice of the fleet end to end:
//
//	shard = fnv1a(name) % Shards        deterministic — a re-added
//	   │                                 name returns to its shard
//	   ├─ device list   per-shard copy-on-write sorted slice; churn
//	   │                and snapshots contend only within the shard
//	   ├─ step worker   StepAll fans each shard to a persistent
//	   │                goroutine; zero allocations per step
//	   ├─ memory pool   ring arenas and batch columns recycle through
//	   │                shard-local free lists, so stations adopted
//	   │                together stay adjacent in memory
//	   └─ render cache  the exporter caches one exposition segment per
//	                    shard, keyed by Manager.ShardGen — a busy
//	                    station re-renders only its own shard's
//	                    segment; the other segments are memcpys
//
// Global views are assembled, not locked: Names and Snapshot k-way
// merge the per-shard sorted lists (NamesInto/SnapshotInto reuse
// caller buffers and stay allocation-flat at 10k stations), and a
// scrape concatenates per-shard segments family by family. Stale
// segments re-render across a bounded worker pool
// (export.Exporter.RenderWorkers); Manager.Gen folds the per-shard
// generations so whole-body caching still works when nothing moved.
// BENCH_fleet.json's sharding section tracks the 256..10240-station
// rows.
//
// # Self-observability
//
// The daemon measures itself with the same discipline it measures
// devices: internal/obs provides lock-free, zero-allocation latency
// histograms (power-of-two bucket bounds from 16 ns to ~2.1 s plus +Inf,
// each an atomic counter, so recording is two atomic adds and is safe on
// the ingest hot path) and a fixed-capacity structured event ring that
// overwrites oldest-first while counting every drop. The fleet records
// ingest-fold latency (sampled one step in thirty-two to keep the instrument
// inside the ingest path's own overhead budget), driver pacing lateness
// on paced fleets, and adopt/start/retire/close lifecycle events with
// station name, kind and reason; the pipeline records per-stage ReadInto
// latency; the exporter times its own scrapes by serve path (full render
// versus cached fleet section).
//
// All of it exports as the powersensor_self_* families — ingest_fold /
// pacing_late / stage_read / scrape_seconds histograms,
// scrape_cache_{hits,misses}_total, events_total and
// events_dropped_total, ring_fill_ratio — plus powersensor_build_info,
// rendered as an always-fresh tail after the cacheable fleet section so
// the daemon's view of itself never goes stale behind its own body
// cache. The event log is also served raw at /api/events. Instrumented
// ingest stays zero-allocation and within a few percent of the
// uninstrumented path (both regression-tested; BENCH_fleet.json records
// the instrumented-versus-uninstrumented rows).
//
// # Long-horizon history
//
// Rings hold seconds; production questions span hours ("energy consumed
// by gpu0 between t1 and t2" — the interval-read model of PMT). Behind
// each station's downsample ring, internal/history keeps a compressed
// per-station tier holding the summed-power points the ring would
// otherwise overwrite:
//
//	ingest (20 kHz)  ─── fold ───►  downsample ring     zero-alloc, never
//	                                 │                   touches the tier
//	                                 │ SyncHistory: pull-based drain,
//	                                 │ cursored by absolute push ordinal
//	                                 ▼ (wraparound counted, not skipped)
//	                          history.Series
//	                    delta-of-delta timestamps +
//	                    XOR-compressed floats (Gorilla-style),
//	                    values quantised to ~1 mW dyadic steps
//	                    (>4x vs flat float64; lossless mode available),
//	                    sealed blocks carry precomputed energy sums
//	                                 │
//	          Device.EnergyWindow(from, to) / Manager.EnergyWindow
//	          trapezoidal integration, partial-interval clipping at
//	          both edges; sealed-block sums make interior blocks O(1)
//
// The tier is pull-based by design: ingest never touches it, so the
// zero-allocation contract above is untouched, and sync passes (every
// query, the daemon's -history-sync timer, retirement) drain the ring
// under its own lock. Eviction is by byte budget (fleet.Config.
// HistoryBytes, psd -history), oldest block first, with every drop
// counted. Windowed queries clip partial intervals at both window edges
// rather than snapping to point boundaries, and hold the zero-interval
// contract shared with pmt.Watts: an empty or inverted window is exactly
// 0 J, never NaN. Cross-checked against every backend's own cumulative
// energy integral to within 1% (internal/fleet history tests), and
// against pmt's interval-read model over twin sources — internal/pmt's
// vendor meters are SourceMeter adapters over the same internal/source
// stream the fleet ingests, so two Reads bracketing a workload and an
// EnergyWindow over the same span measure the same energy. Served by
// psd as GET /api/device/{name}/energy and a decimated long-range
// /api/device/{name}/history trace export; footprint, compression ratio
// and sync/query latency export as powersensor_self_history_* families.
//
// # Multi-daemon federation
//
// One daemon scales to ~10k stations on one host; a fleet platform
// spans hosts. internal/federation adds the multi-daemon tier: leaf
// psd daemons serve their local fleets completely unchanged, and a
// head psd (psd -federate) aggregates them without owning a single
// station of its own:
//
//	scrapers ──▶ head psd ──┬─▶ leaf psd (fleet A, block-paced)
//	  heavy      (-federate)├─▶ leaf psd (fleet B)
//	  polling               └─▶ leaf psd (fleet C)
//
// The head polls every leaf's /api/fleet on a bounded worker pool —
// each poll with its own timeout, retry-with-backoff, and a per-leaf
// circuit breaker (closed → open after K consecutive failures →
// half-open single probe) — and merges the views into one namespaced
// exposition: every station series gains a leaf label, so duplicate
// station names across leaves stay distinct series, and per-device
// drill-downs proxy to the owning leaf as
// /api/device/{leaf}/{name}/energy and friends. Fan-in is
// health-gated: a dead or slow leaf degrades the aggregate instead of
// stalling it — its last-known stations serve marked stale (health
// gauge 3, stale:true in the merged JSON), powersensor_leaf_up drops
// to 0, and the breaker caps what the failure costs the poll loop to
// one rejected decision per round. /healthz answers 503 only when
// every leaf is dark, so an orchestrator restarts the head for a dead
// downstream, not a dead rack.
//
// The scrape economics reuse the sharded-render design one tier up:
// /api/fleet is versioned (a schema field the head checks, failing
// loudly on skew) and carries the leaf's generation fingerprint, which
// backs both the endpoint's ETag (quiet leaves answer 304 to
// If-None-Match — no body transfer) and the head's per-leaf cached
// exposition segment (no re-render until the generation moves). A head
// scrape over quiet leaves is therefore segment memcpys plus a
// self-telemetry tail: measured ~350-400 ns/station at 9 allocs/op vs
// ~800 ns/station for the render the cache skips (BENCH_fleet.json,
// federation section). Per-leaf observability exports as
// powersensor_leaf_* families — up, stations, generation, breaker
// state, consecutive failures, breaker opens, polls, failures,
// renders, and a poll-latency histogram — with leaf up/down and
// breaker transitions logged to the head's /api/events ring. See
// examples/federation for two in-process leaves and a head driven
// through a kill-and-recover cycle.
//
// # The psd daemon
//
// Command psd is the served entry point:
//
//	psd [-listen :9120] [-fleet name=kindspec,...]
//	    [-seed 1] [-rate 1] [-slice 5ms] [-block 20] [-ring 4096] [-shards 8]
//	    [-history 1048576] [-history-sync 1s]
//	    [-warmup 2s] [-log-format text|json] [-debug-addr addr] [-version]
//
//	psd -federate leaf1=host1:9120,leaf2=host2:9120 [-federate-interval 1s]
//	    [-federate-timeout dur] [-listen :9120]
//
// The second form is the federation head described above: no local
// fleet, every station aggregated from the named leaves. Both forms
// trap SIGINT/SIGTERM and drain in-flight requests before exiting, and
// every listener (serving, head, -debug-addr) carries read-header,
// read and idle timeouts so a slow-loris peer cannot pin connections.
//
// Fleet specs mix PowerSensor3 rig kinds (rtx4000ada, w7700, jetson, ssd)
// with software-meter kinds (nvml, amdsmi, jetson-ina, rapl) freely, and
// stack derived pipeline views with the pipe syntax; the full kindspec
// grammar is documented on simsetup.ParseFleet. It
// serves GET /metrics (Prometheus text exposition), /api/fleet (JSON
// status of every station), /api/events (the lifecycle event log),
// /api/device/{name}/trace (recent downsampled
// trace as CSV or JSON), /api/device/{name}/energy (windowed energy
// over the history tier), /api/device/{name}/history (long-range
// decimated trace) and /healthz, plus the lifecycle admin endpoints
// POST /api/fleet/add (name= and kind= parameters) and
// POST /api/fleet/remove/{name} for hot-adding and retiring stations
// without restarting the daemon. A scrape yields per-station gauges
// and counters such as:
//
//	powersensor_source_info{device="gpu0",backend="powersensor3",kind="rtx4000ada"} 1
//	powersensor_source_rate_hz{device="gpu0"} 20000
//	powersensor_watts{device="gpu0",pair="2",channel="pcie8pin"} 55.88
//	powersensor_board_watts{device="gpu0"} 67.7
//	powersensor_joules_total{device="gpu0"} 154.9
//	powersensor_samples_total{device="gpu0"} 40000
//	powersensor_resyncs_total{device="gpu0"} 0
//
// See the cmd/psd package documentation for the full flag and endpoint
// reference, and examples/fleet for a minimal in-process mixed-backend
// fleet scrape.
package repro
