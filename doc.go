// Package repro is a from-scratch Go reproduction of "PowerSensor3: A Fast
// and Accurate Open Source Power Measurement Tool" (ISPASS 2025).
//
// The implementation lives under internal/: the host library in
// internal/core, the simulated hardware (sensors, ADC, firmware, USB,
// display) in their own packages, the device-under-test models (GPUs, SSD)
// beside them, and one experiment harness per paper table/figure in
// internal/experiments. See DESIGN.md for the full inventory and
// EXPERIMENTS.md for paper-versus-measured results.
package repro
